//! Figures 6 and 9: PoP assignment quality.
//!
//! "Potential improvement" is the distance between a client and its
//! *servicing* PoP minus the distance to the *closest* PoP of the same
//! provider. The paper's medians: NextDNS 6mi, Google 44mi, Cloudflare
//! 46mi, Quad9 769mi; 26% of Cloudflare clients (but only 10% of Google
//! clients) could move ≥1000 miles closer; 21% of Quad9 clients sit on
//! their closest PoP.

use dohperf_core::records::Dataset;
use dohperf_providers::provider::{ProviderKind, ALL_PROVIDERS};
use dohperf_stats::desc::{median, quantile};
use serde::Serialize;

/// Figure 6/9 statistics for one provider.
#[derive(Debug, Clone, Serialize)]
pub struct PopImprovementStats {
    /// Which provider.
    pub provider: ProviderKind,
    /// All potential-improvement values (miles), sorted.
    pub improvements_miles: Vec<f64>,
    /// All client→servicing-PoP distances (miles), sorted (Figure 9).
    pub distances_miles: Vec<f64>,
    /// Median potential improvement.
    pub median_improvement_miles: f64,
    /// Fraction of clients that could move at least 1,000 miles closer.
    pub over_1000_miles_fraction: f64,
    /// Fraction of clients assigned to their closest PoP (<10 miles of
    /// improvement counts as optimal, absorbing geodesic rounding).
    pub optimal_fraction: f64,
    /// 90th percentile of the servicing distance.
    pub p90_distance_miles: f64,
}

/// Compute Figure 6/9 statistics for every provider.
pub fn pop_improvement(ds: &Dataset) -> Vec<PopImprovementStats> {
    ALL_PROVIDERS
        .iter()
        .map(|&provider| {
            let mut improvements = Vec::new();
            let mut distances = Vec::new();
            for r in &ds.records {
                if let Some(s) = r.sample(provider) {
                    improvements.push(s.potential_improvement_miles());
                    distances.push(s.pop_distance_miles);
                }
            }
            improvements.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            distances.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let n = improvements.len().max(1) as f64;
            let over_1000 = improvements.iter().filter(|&&x| x >= 1000.0).count() as f64 / n;
            let optimal = improvements.iter().filter(|&&x| x < 10.0).count() as f64 / n;
            PopImprovementStats {
                provider,
                median_improvement_miles: median(&improvements),
                over_1000_miles_fraction: over_1000,
                optimal_fraction: optimal,
                p90_distance_miles: quantile(&distances, 0.9),
                improvements_miles: improvements,
                distances_miles: distances,
            }
        })
        .collect()
}

/// Look up one provider's stats.
pub fn stats_for(stats: &[PopImprovementStats], provider: ProviderKind) -> &PopImprovementStats {
    stats
        .iter()
        .find(|s| s.provider == provider)
        .expect("all providers computed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::shared_dataset;

    #[test]
    fn quad9_is_the_outlier() {
        // Paper: Quad9's median improvement (769mi) dwarfs the others
        // (6–46mi).
        let stats = pop_improvement(shared_dataset());
        let q9 = stats_for(&stats, ProviderKind::Quad9).median_improvement_miles;
        for p in [
            ProviderKind::Cloudflare,
            ProviderKind::Google,
            ProviderKind::NextDns,
        ] {
            let other = stats_for(&stats, p).median_improvement_miles;
            assert!(q9 > 3.0 * other.max(10.0), "{p}: q9 {q9} vs {other}");
        }
        assert!(q9 > 300.0, "q9 median {q9}");
    }

    #[test]
    fn nextdns_is_near_optimal() {
        // Paper: NextDNS median improvement 6 miles — misassignments are
        // tiny because the deployment is dense.
        let stats = pop_improvement(shared_dataset());
        let nd = stats_for(&stats, ProviderKind::NextDns);
        assert!(
            nd.median_improvement_miles < 80.0,
            "{}",
            nd.median_improvement_miles
        );
        assert!(nd.optimal_fraction > 0.4, "{}", nd.optimal_fraction);
    }

    #[test]
    fn best_routed_fleets_have_small_nonzero_medians() {
        // Paper Figure 6: CF 46mi / GG 44mi / ND 6mi — small but nonzero,
        // vs Quad9's 769mi.
        let stats = pop_improvement(shared_dataset());
        for p in [ProviderKind::Cloudflare, ProviderKind::Google] {
            let m = stats_for(&stats, p).median_improvement_miles;
            assert!((1.0..400.0).contains(&m), "{p}: {m}");
        }
    }

    #[test]
    fn cloudflare_worse_tail_than_google() {
        // Paper: 26% of Cloudflare clients vs 10% of Google clients could
        // move >=1000mi closer.
        let stats = pop_improvement(shared_dataset());
        let cf = stats_for(&stats, ProviderKind::Cloudflare).over_1000_miles_fraction;
        let gg = stats_for(&stats, ProviderKind::Google).over_1000_miles_fraction;
        assert!(cf > gg, "cf {cf} gg {gg}");
    }

    #[test]
    fn quad9_optimal_fraction_near_paper() {
        // Paper: only 21% of Quad9 clients on their closest PoP.
        let stats = pop_improvement(shared_dataset());
        let q9 = stats_for(&stats, ProviderKind::Quad9).optimal_fraction;
        assert!((0.10..0.40).contains(&q9), "{q9}");
    }

    #[test]
    fn google_distances_larger_than_cloudflare() {
        // With 26 PoPs vs 146, Google clients sit farther from their
        // servicing PoP (Figure 9) even though assignment is cleaner.
        let stats = pop_improvement(shared_dataset());
        let gg = median(&stats_for(&stats, ProviderKind::Google).distances_miles);
        let cf = median(&stats_for(&stats, ProviderKind::Cloudflare).distances_miles);
        assert!(gg > cf, "google {gg} cloudflare {cf}");
    }

    #[test]
    fn improvements_never_negative() {
        let stats = pop_improvement(shared_dataset());
        for s in &stats {
            assert!(s.improvements_miles.iter().all(|&x| x >= 0.0));
        }
    }
}
