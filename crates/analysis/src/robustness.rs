//! Robustness checks beyond the paper's point estimates.
//!
//! * Bootstrap confidence intervals on the headline medians — sanity that
//!   the reproduction's key comparisons are not sampling noise.
//! * Spearman rank correlations between country covariates and the
//!   country-median Do53→DoH delta — a nonparametric cross-check of the
//!   §6 linear model's signs that is immune to the outlier-sensitivity of
//!   min–max-scaled OLS coefficients.

use crate::deltas::CountryDelta;
use dohperf_core::records::Dataset;
use dohperf_stats::desc::median;
use dohperf_stats::resample::{median_ci, spearman, ConfidenceInterval};
use dohperf_world::countries::country;
use serde::Serialize;
use std::collections::HashMap;

/// Bootstrap CIs on the headline medians.
#[derive(Debug, Clone, Serialize)]
pub struct HeadlineCis {
    /// Median DoH1 across all (client, provider) observations.
    pub doh1: ConfidenceInterval,
    /// Median DoHR.
    pub dohr: ConfidenceInterval,
    /// Median Do53 (per-client header values).
    pub do53: ConfidenceInterval,
}

impl HeadlineCis {
    /// True when the DoH1 and Do53 intervals do not overlap — the
    /// headline slowdown is then unambiguous at the chosen level.
    pub fn slowdown_is_significant(&self) -> bool {
        self.doh1.lo > self.do53.hi
    }
}

/// Compute 95% bootstrap CIs for the headline medians.
pub fn headline_cis(ds: &Dataset, seed: u64) -> Option<HeadlineCis> {
    let mut doh1 = Vec::new();
    let mut dohr = Vec::new();
    let mut do53 = Vec::new();
    for r in &ds.records {
        for s in &r.doh {
            doh1.push(s.t_doh_ms);
            dohr.push(s.t_dohr_ms);
        }
        if let Some(v) = r.do53_ms {
            do53.push(v);
        }
    }
    Some(HeadlineCis {
        doh1: median_ci(&doh1, 0.95, seed)?,
        dohr: median_ci(&dohr, 0.95, seed.wrapping_add(1))?,
        do53: median_ci(&do53, 0.95, seed.wrapping_add(2))?,
    })
}

/// Spearman correlations of country covariates with the country-median
/// delta (DoH-N − Do53).
#[derive(Debug, Clone, Serialize)]
pub struct CovariateCorrelations {
    /// ρ(bandwidth, delta) — expected strongly negative.
    pub bandwidth: f64,
    /// ρ(AS count, delta) — expected negative.
    pub as_count: f64,
    /// ρ(GDP per capita, delta) — expected weakly negative / null.
    pub gdp: f64,
    /// Countries included.
    pub n: usize,
}

/// Rank-correlate covariates against per-country median deltas.
pub fn covariate_correlations(deltas: &[CountryDelta]) -> Option<CovariateCorrelations> {
    let mut per_country: HashMap<&str, Vec<f64>> = HashMap::new();
    for d in deltas {
        per_country.entry(d.country).or_default().push(d.delta_ms);
    }
    let mut delta_v = Vec::new();
    let mut bw_v = Vec::new();
    let mut as_v = Vec::new();
    let mut gdp_v = Vec::new();
    for (iso, ds) in &per_country {
        let Some(c) = country(iso) else { continue };
        delta_v.push(median(ds));
        bw_v.push(c.bandwidth_mbps);
        as_v.push(f64::from(c.as_count));
        gdp_v.push(c.gdp_per_capita);
    }
    Some(CovariateCorrelations {
        bandwidth: spearman(&bw_v, &delta_v)?,
        as_count: spearman(&as_v, &delta_v)?,
        gdp: spearman(&gdp_v, &delta_v)?,
        n: delta_v.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deltas::country_deltas;
    use crate::testutil::shared_dataset;

    #[test]
    fn headline_slowdown_is_statistically_unambiguous() {
        let cis = headline_cis(shared_dataset(), 11).unwrap();
        assert!(
            cis.slowdown_is_significant(),
            "DoH1 {:?} vs Do53 {:?}",
            cis.doh1,
            cis.do53
        );
        assert!(cis.doh1.contains(cis.doh1.estimate));
    }

    #[test]
    fn dohr_sits_between_do53_and_doh1() {
        let cis = headline_cis(shared_dataset(), 11).unwrap();
        assert!(cis.dohr.estimate < cis.doh1.estimate);
        assert!(cis.dohr.estimate > cis.do53.estimate);
    }

    #[test]
    fn rank_correlations_confirm_the_linear_model_signs() {
        let deltas = country_deltas(shared_dataset(), 1);
        let corr = covariate_correlations(&deltas).unwrap();
        assert!(corr.n >= 150, "n {}", corr.n);
        // Bandwidth and AS count correlate negatively with the delta —
        // nonparametrically, so no scaled-coefficient caveats apply.
        assert!(corr.bandwidth < -0.2, "bandwidth rho {}", corr.bandwidth);
        assert!(corr.as_count < -0.1, "ases rho {}", corr.as_count);
    }

    #[test]
    fn correlations_shrink_with_reuse() {
        let c1 = covariate_correlations(&country_deltas(shared_dataset(), 1)).unwrap();
        let c100 = covariate_correlations(&country_deltas(shared_dataset(), 100)).unwrap();
        assert!(
            c100.bandwidth.abs() < c1.bandwidth.abs() + 0.15,
            "1: {} 100: {}",
            c1.bandwidth,
            c100.bandwidth
        );
    }
}
