//! Vantage-point bias analysis (the §7 limitation, quantified).
//!
//! The paper's clients follow BrightData's exit-node distribution, which
//! over-represents countries where HolaVPN is popular relative to their
//! real Internet populations. Reweighting each client by its country's
//! share of the global Internet ecosystem — proxied here by national AS
//! counts, the best ecosystem-size signal in the covariate table — shows
//! how much the headline numbers depend on the vantage distribution.

use dohperf_core::records::Dataset;
use dohperf_stats::desc::{median, weighted_median};
use dohperf_world::countries::country;
use serde::Serialize;

/// Headline medians under the original vs reweighted client distribution.
#[derive(Debug, Clone, Serialize)]
pub struct VantageComparison {
    /// Unweighted median DoH1 (the paper's number).
    pub doh1_unweighted_ms: f64,
    /// Ecosystem-weighted median DoH1.
    pub doh1_weighted_ms: f64,
    /// Unweighted median Do53.
    pub do53_unweighted_ms: f64,
    /// Ecosystem-weighted median Do53.
    pub do53_weighted_ms: f64,
}

impl VantageComparison {
    /// How much the vantage distribution inflates the DoH1 median, as a
    /// fraction (positive = BrightData's distribution makes DoH look
    /// slower than an Internet-population-weighted view would).
    pub fn doh1_bias_fraction(&self) -> f64 {
        (self.doh1_unweighted_ms - self.doh1_weighted_ms) / self.doh1_weighted_ms
    }
}

/// Weight for a client: its country's AS count divided by the number of
/// sampled clients from that country (so a country's *total* weight is
/// proportional to its ecosystem size, regardless of how many exits
/// BrightData happened to have there).
fn client_weight(ds: &Dataset, country_iso: &str) -> f64 {
    let Some(c) = country(country_iso) else {
        return 0.0;
    };
    let clients_here = ds
        .records
        .iter()
        .filter(|r| r.country_iso == country_iso)
        .count()
        .max(1);
    f64::from(c.as_count) / clients_here as f64
}

/// Compare unweighted vs ecosystem-weighted headline medians.
pub fn vantage_comparison(ds: &Dataset) -> VantageComparison {
    let mut doh1 = Vec::new();
    let mut doh1_w = Vec::new();
    let mut do53 = Vec::new();
    let mut do53_w = Vec::new();
    for r in &ds.records {
        let w = client_weight(ds, r.country_iso);
        for s in &r.doh {
            doh1.push(s.t_doh_ms);
            doh1_w.push(w);
        }
        if let Some(v) = r.do53_ms {
            do53.push(v);
            do53_w.push(w);
        }
    }
    VantageComparison {
        doh1_unweighted_ms: median(&doh1),
        doh1_weighted_ms: weighted_median(&doh1, &doh1_w),
        do53_unweighted_ms: median(&do53),
        do53_weighted_ms: weighted_median(&do53, &do53_w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::shared_dataset;

    #[test]
    fn weighting_shifts_medians_toward_big_ecosystems() {
        let cmp = vantage_comparison(shared_dataset());
        // Big-AS countries are well-connected: the weighted view is
        // faster than BrightData's country-uniform-ish sample.
        assert!(
            cmp.doh1_weighted_ms < cmp.doh1_unweighted_ms,
            "weighted {} unweighted {}",
            cmp.doh1_weighted_ms,
            cmp.doh1_unweighted_ms
        );
        assert!(cmp.do53_weighted_ms < cmp.do53_unweighted_ms);
        // The bias is substantial but not absurd.
        let bias = cmp.doh1_bias_fraction();
        assert!((0.02..2.0).contains(&bias), "bias {bias}");
    }

    #[test]
    fn all_medians_positive() {
        let cmp = vantage_comparison(shared_dataset());
        for v in [
            cmp.doh1_unweighted_ms,
            cmp.doh1_weighted_ms,
            cmp.do53_unweighted_ms,
            cmp.do53_weighted_ms,
        ] {
            assert!(v > 0.0 && v.is_finite());
        }
    }
}
