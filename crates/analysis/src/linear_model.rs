//! Tables 5 and 6: linear models of the raw Do53→DoH delta.
//!
//! Outcome: `delta_N = DoH-N − Do53` per (client, provider) observation,
//! for N ∈ {1, 10, 100}. Inputs: GDP per capita, national bandwidth,
//! national AS count, client→nameserver distance, client→resolver
//! distance. Scaled coefficients multiply each raw coefficient by the
//! feature's observed range, exactly as the paper's normalised columns.

use crate::covariates::CovariateTable;
use dohperf_providers::provider::ALL_PROVIDERS;
use dohperf_stats::ols::OlsRegression;
use dohperf_stats::scale::MinMaxScaler;
use serde::Serialize;

/// One coefficient row.
#[derive(Debug, Clone, Serialize)]
pub struct LinearCoefRow {
    /// Metric label as in Table 5.
    pub metric: &'static str,
    /// Raw coefficient (ms per unit).
    pub coef: f64,
    /// Scaled coefficient (ms across the feature's observed range).
    pub scaled_coef: f64,
    /// p-value.
    pub p_value: f64,
}

/// One fitted model (one "Output" block of Table 5, or one resolver block
/// of Table 6).
#[derive(Debug, Clone, Serialize)]
pub struct LinearModelFit {
    /// Block label ("Delta", "Delta 10", "Delta 100", or a resolver name).
    pub output: String,
    /// Coefficient rows in the paper's metric order.
    pub rows: Vec<LinearCoefRow>,
    /// R².
    pub r_squared: f64,
    /// Observations.
    pub n: usize,
}

/// The full Table 5 (+ optionally Table 6) report.
#[derive(Debug, Clone, Serialize)]
pub struct LinearModelReport {
    /// The three Table 5 blocks.
    pub table5: Vec<LinearModelFit>,
    /// The four per-resolver Table 6 blocks (delta-1 only).
    pub table6: Vec<LinearModelFit>,
}

const METRICS: [&str; 5] = [
    "GDP",
    "Bandwidth",
    "Num ASes",
    "Nameserver Dist.",
    "Resolver Dist.",
];

fn features_of(r: &crate::covariates::ClientCovariates) -> [f64; 5] {
    [
        r.gdp_per_capita,
        r.bandwidth_mbps,
        r.as_count,
        r.nameserver_distance_miles,
        r.resolver_distance_miles,
    ]
}

fn fit_block(
    label: String,
    rows: &[&crate::covariates::ClientCovariates],
    n_requests: u32,
) -> LinearModelFit {
    let mut reg = OlsRegression::new(&METRICS);
    let feature_rows: Vec<Vec<f64>> = rows.iter().map(|r| features_of(r).to_vec()).collect();
    for (r, f) in rows.iter().zip(&feature_rows) {
        reg.push(f, r.delta_ms(n_requests));
    }
    let fit = reg.fit().expect("Table 5 design must be full rank");
    let scaler = MinMaxScaler::fit(&feature_rows).expect("non-empty table");
    let out_rows = METRICS
        .iter()
        .enumerate()
        .map(|(j, &metric)| {
            let c = fit.coef(metric).expect("metric fitted");
            LinearCoefRow {
                metric,
                coef: c.estimate,
                scaled_coef: scaler.scaled_coefficient(j, c.estimate),
                p_value: c.p_value,
            }
        })
        .collect();
    LinearModelFit {
        output: label,
        rows: out_rows,
        r_squared: fit.r_squared,
        n: rows.len(),
    }
}

/// Fit the Table 5 blocks (all providers pooled, N ∈ {1, 10, 100}) and
/// the Table 6 per-resolver blocks (N = 1).
pub fn fit_linear_models(table: &CovariateTable) -> LinearModelReport {
    let all: Vec<&crate::covariates::ClientCovariates> = table.rows.iter().collect();
    let table5 = vec![
        fit_block("Delta".to_string(), &all, 1),
        fit_block("Delta 10".to_string(), &all, 10),
        fit_block("Delta 100".to_string(), &all, 100),
    ];
    let table6 = ALL_PROVIDERS
        .iter()
        .map(|&provider| {
            let subset: Vec<&crate::covariates::ClientCovariates> = table
                .rows
                .iter()
                .filter(|r| r.provider == provider)
                .collect();
            fit_block(provider.name().to_string(), &subset, 1)
        })
        .collect();
    LinearModelReport { table5, table6 }
}

/// Look up one metric row in a fit.
pub fn coef<'a>(fit: &'a LinearModelFit, metric: &str) -> &'a LinearCoefRow {
    fit.rows
        .iter()
        .find(|r| r.metric == metric)
        .expect("metric present")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covariates;
    use crate::testutil::shared_dataset;
    use std::sync::OnceLock;

    fn report() -> &'static LinearModelReport {
        static REPORT: OnceLock<LinearModelReport> = OnceLock::new();
        REPORT.get_or_init(|| fit_linear_models(&covariates::build(shared_dataset())))
    }

    #[test]
    fn bandwidth_is_negative_and_dominant() {
        // Paper: bandwidth scaled coef -134.5ms at Delta, the largest
        // infrastructure factor.
        let delta = &report().table5[0];
        let bw = coef(delta, "Bandwidth");
        assert!(bw.coef < 0.0, "bandwidth coef {}", bw.coef);
        assert!(bw.p_value < 0.001);
        assert!(bw.scaled_coef < -20.0, "scaled {}", bw.scaled_coef);
    }

    #[test]
    fn ases_negative_and_significant() {
        // Paper: Num ASes scaled coef -80.8ms.
        let delta = &report().table5[0];
        let ases = coef(delta, "Num ASes");
        assert!(ases.coef < 0.0);
        assert!(ases.p_value < 0.001);
    }

    #[test]
    fn resolver_distance_positive_and_large() {
        // Paper: +93.4ms scaled — second-largest factor overall.
        let delta = &report().table5[0];
        let rd = coef(delta, "Resolver Dist.");
        assert!(rd.coef > 0.0);
        assert!(rd.p_value < 0.001);
        assert!(rd.scaled_coef > 20.0, "scaled {}", rd.scaled_coef);
    }

    #[test]
    fn nameserver_distance_smaller_than_resolver_distance() {
        // Paper: +30.0ms vs +93.4ms scaled.
        let delta = &report().table5[0];
        let ns = coef(delta, "Nameserver Dist.");
        let rd = coef(delta, "Resolver Dist.");
        assert!(ns.scaled_coef.abs() < rd.scaled_coef.abs());
    }

    #[test]
    fn coefficients_shrink_with_reuse() {
        // Paper: every scaled coefficient shrinks from Delta to Delta 100.
        let t5 = &report().table5;
        for metric in ["Bandwidth", "Num ASes", "Resolver Dist."] {
            let d1 = coef(&t5[0], metric).scaled_coef.abs();
            let d100 = coef(&t5[2], metric).scaled_coef.abs();
            assert!(d100 < d1, "{metric}: {d1} -> {d100}");
        }
    }

    #[test]
    fn table6_has_four_resolver_blocks() {
        let t6 = &report().table6;
        assert_eq!(t6.len(), 4);
        for block in t6 {
            assert_eq!(block.rows.len(), 5);
            assert!(block.n > 100);
            // Bandwidth stays negative within every provider.
            assert!(coef(block, "Bandwidth").coef < 0.0, "{}", block.output);
        }
    }

    #[test]
    fn quad9_resolver_distance_matters() {
        let t6 = &report().table6;
        let q9 = t6.iter().find(|b| b.output == "Quad9").unwrap();
        assert!(coef(q9, "Resolver Dist.").coef > 0.0);
    }
}
