//! Table 4: logistic modelling of DoH slowdowns.
//!
//! The outcome is binary: did this (client, provider) observation achieve
//! a DoH-N/Do53 multiplier *worse* than the global median multiplier?
//! (The paper codes better-than-median as success; reporting the odds of
//! a slowdown flips the sign, so the odds ratios here are for the
//! *slowdown* event — matching the table's presentation, where e.g. slow
//! bandwidth has OR 1.81x.)
//!
//! Inputs are the paper's four categoricals, dummy-coded against the same
//! controls: Bandwidth (control = Fast), Income (control = High), ASes
//! (control = higher than median), Resolver (control = Cloudflare).

use crate::covariates::CovariateTable;
use dohperf_providers::provider::ProviderKind;
use dohperf_stats::desc::median;
use dohperf_stats::logistic::LogisticRegression;
use dohperf_world::countries::IncomeGroup;
use serde::Serialize;

/// One odds-ratio row across the four DoH-N columns.
#[derive(Debug, Clone, Serialize)]
pub struct OddsRow {
    /// Variable label as printed in Table 4.
    pub variable: String,
    /// OR for DoH-1, DoH-10, DoH-100, DoH-1000.
    pub odds_ratios: [f64; 4],
    /// p-values for the same columns.
    pub p_values: [f64; 4],
}

/// The fitted Table 4.
#[derive(Debug, Clone, Serialize)]
pub struct LogisticModelReport {
    /// Global median multipliers for N = 1, 10, 100, 1000 (the paper's
    /// 1.84x / 1.24x / 1.18x / 1.17x).
    pub median_multipliers: [f64; 4],
    /// Odds-ratio rows in the paper's order.
    pub rows: Vec<OddsRow>,
    /// Observations per fit.
    pub n: usize,
}

/// The four DoH-N horizons of Table 4.
pub const HORIZONS: [u32; 4] = [1, 10, 100, 1000];

const FEATURES: [&str; 7] = [
    "bandwidth_slow",
    "income_upper_middle",
    "income_lower_middle",
    "income_low",
    "ases_low",
    "resolver_google",
    "resolver_nextdns",
];
// Quad9 is appended below; arrays keep the design order readable.

/// Fit the Table 4 models.
pub fn fit_logistic_models(table: &CovariateTable) -> LogisticModelReport {
    let mut feature_names: Vec<&str> = FEATURES.to_vec();
    feature_names.push("resolver_quad9");

    let mut median_multipliers = [0.0; 4];
    let mut fits = Vec::new();
    for (col, &n) in HORIZONS.iter().enumerate() {
        let multipliers: Vec<f64> = table.rows.iter().map(|r| r.multiplier(n)).collect();
        let global_median = median(&multipliers);
        median_multipliers[col] = global_median;
        let mut reg = LogisticRegression::new(&feature_names);
        for (r, &m) in table.rows.iter().zip(&multipliers) {
            let features = encode(r, table.median_as_count);
            // Outcome: slowdown = multiplier worse than the global median.
            reg.push(&features, m > global_median);
        }
        fits.push(reg.fit().expect("Table 4 design must be full rank"));
    }

    let labels: [(&str, &str); 8] = [
        ("bandwidth_slow", "Bandwidth: Slow (control = Fast)"),
        (
            "income_upper_middle",
            "Income: Upper-middle (control = High)",
        ),
        ("income_lower_middle", "Income: Lower-middle"),
        ("income_low", "Income: Low"),
        ("ases_low", "Num ASes: Lower than median (control = Higher)"),
        ("resolver_google", "Resolver: Google (control = Cloudflare)"),
        ("resolver_nextdns", "Resolver: NextDNS"),
        ("resolver_quad9", "Resolver: Quad9"),
    ];
    let rows = labels
        .iter()
        .map(|(key, label)| {
            let mut odds_ratios = [0.0; 4];
            let mut p_values = [0.0; 4];
            for (col, fit) in fits.iter().enumerate() {
                let coef = fit.coef(key).expect("coefficient present");
                odds_ratios[col] = coef.odds_ratio;
                p_values[col] = coef.p_value;
            }
            OddsRow {
                variable: (*label).to_string(),
                odds_ratios,
                p_values,
            }
        })
        .collect();

    LogisticModelReport {
        median_multipliers,
        rows,
        n: table.rows.len(),
    }
}

fn encode(r: &crate::covariates::ClientCovariates, median_as: f64) -> [f64; 8] {
    [
        if r.fast_internet { 0.0 } else { 1.0 },
        if r.income == IncomeGroup::UpperMiddle {
            1.0
        } else {
            0.0
        },
        if r.income == IncomeGroup::LowerMiddle {
            1.0
        } else {
            0.0
        },
        if r.income == IncomeGroup::Low {
            1.0
        } else {
            0.0
        },
        if r.as_count < median_as { 1.0 } else { 0.0 },
        if r.provider == ProviderKind::Google {
            1.0
        } else {
            0.0
        },
        if r.provider == ProviderKind::NextDns {
            1.0
        } else {
            0.0
        },
        if r.provider == ProviderKind::Quad9 {
            1.0
        } else {
            0.0
        },
    ]
}

/// Find a row by a substring of its label.
pub fn row<'a>(report: &'a LogisticModelReport, needle: &str) -> &'a OddsRow {
    report
        .rows
        .iter()
        .find(|r| r.variable.contains(needle))
        .expect("row present")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covariates;
    use crate::testutil::shared_dataset;
    use std::sync::OnceLock;

    fn report() -> &'static LogisticModelReport {
        static REPORT: OnceLock<LogisticModelReport> = OnceLock::new();
        REPORT.get_or_init(|| fit_logistic_models(&covariates::build(shared_dataset())))
    }

    #[test]
    fn median_multipliers_decrease_with_reuse() {
        // Paper: 1.84x -> 1.24x -> 1.18x -> 1.17x.
        let m = report().median_multipliers;
        assert!(m[0] > m[1] && m[1] > m[2] && m[2] >= m[3] - 0.05, "{m:?}");
        assert!((1.2..3.2).contains(&m[0]), "DoH1 multiplier {}", m[0]);
        assert!((0.9..2.0).contains(&m[1]), "DoH10 multiplier {}", m[1]);
    }

    #[test]
    fn slow_bandwidth_raises_slowdown_odds() {
        // Paper: OR 1.81x at DoH1, persisting (1.65x at DoH1000).
        let r = row(report(), "Bandwidth");
        assert!(r.odds_ratios[0] > 1.2, "OR {}", r.odds_ratios[0]);
        assert!(r.odds_ratios[3] > 1.1, "OR_1000 {}", r.odds_ratios[3]);
        assert!(r.p_values[0] < 0.001);
    }

    #[test]
    fn income_gradient_at_doh1() {
        // Paper: 1.50x / 1.76x / 1.98x for UM / LM / Low at DoH1. The
        // lower-middle tier has by far the most observations, so the
        // robust gradient check is UM < LM; the sparse low-income tier
        // must at least point the same way.
        let um = row(report(), "Upper-middle").odds_ratios[0];
        let lm = row(report(), "Lower-middle").odds_ratios[0];
        let low = row(report(), "Income: Low").odds_ratios[0];
        assert!(um > 1.0, "um {um}");
        assert!(lm > um, "lm {lm} um {um}");
        assert!(low > 1.0, "low {low}");
    }

    #[test]
    fn few_ases_raise_slowdown_odds() {
        // Paper: 1.99x, still 1.69x at DoH1000.
        let r = row(report(), "Num ASes");
        assert!(r.odds_ratios[0] > 1.3, "OR {}", r.odds_ratios[0]);
        assert!(r.p_values[0] < 0.001);
    }

    #[test]
    fn nextdns_is_worst_resolver() {
        // Paper: NextDNS OR 2.25x vs Google 1.76x and Quad9 1.78x.
        let nd = row(report(), "NextDNS").odds_ratios[0];
        let gg = row(report(), "Google").odds_ratios[0];
        let q9 = row(report(), "Quad9").odds_ratios[0];
        assert!(nd > gg && nd > q9, "nd {nd} gg {gg} q9 {q9}");
        assert!(gg > 1.0 && q9 > 1.0);
    }

    #[test]
    fn quad9_odds_drop_with_reuse() {
        // Paper: Quad9 falls from 1.78x to 1.25x by DoH1000 — reuse
        // amortises its bad handshake placement.
        let r = row(report(), "Quad9");
        assert!(r.odds_ratios[3] < r.odds_ratios[0], "{:?}", r.odds_ratios);
    }
}
