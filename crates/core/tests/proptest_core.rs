//! Property-based tests for the timing algebra (Equations 6–8).

use dohperf_core::equations::{derive_rtt_ms, derive_t_doh_ms, derive_t_dohr_ms, doh_n_ms};
use dohperf_http::luminati::{ProxyTimeline, TunTimeline};
use dohperf_netsim::time::{SimDuration, SimTime};
use dohperf_proxy::observation::DohObservation;
use proptest::prelude::*;

/// Build an observation from exact leg timings (no jitter): the generative
/// inverse of the derivation.
fn observation(
    rtt_ms: f64,
    dns_ms: f64,
    connect_ms: f64,
    bd_ms: f64,
    tls_extra_ms: f64,
    query_ms: f64,
) -> DohObservation {
    let t_a = SimTime::ZERO;
    let t_b = t_a + SimDuration::from_millis_f64(rtt_ms + bd_ms + dns_ms + connect_ms);
    let t_c = t_b;
    // TLS leg mirrors connect plus a controlled violation of Assumption 8.
    let tls_leg = connect_ms + tls_extra_ms;
    let t_d = t_c + SimDuration::from_millis_f64(2.0 * rtt_ms + tls_leg + query_ms);
    DohObservation {
        t_a,
        t_b,
        t_c,
        t_d,
        tun: TunTimeline {
            dns: SimDuration::from_millis_f64(dns_ms),
            connect: SimDuration::from_millis_f64(connect_ms),
        },
        proxy: ProxyTimeline {
            auth: SimDuration::from_millis_f64(bd_ms),
            init: SimDuration::ZERO,
            select_node: SimDuration::ZERO,
            domain_check: SimDuration::ZERO,
        },
        truth_t_doh: SimDuration::from_millis_f64(dns_ms + connect_ms + tls_leg + query_ms),
        truth_t_dohr: SimDuration::from_millis_f64(query_ms),
    }
}

proptest! {
    /// With the paper's assumptions satisfied exactly, Equations 6 and 7
    /// are *identities*: they recover RTT and t_DoH for any leg values.
    #[test]
    fn equations_are_exact_under_assumptions(
        rtt in 1.0f64..500.0,
        dns in 0.5f64..300.0,
        connect in 0.5f64..300.0,
        bd in 0.5f64..50.0,
        query in 1.0f64..800.0,
    ) {
        let obs = observation(rtt, dns, connect, bd, 0.0, query);
        prop_assert!((derive_rtt_ms(&obs) - rtt).abs() < 1e-3);
        prop_assert!((derive_t_doh_ms(&obs) - obs.truth_t_doh.as_millis_f64()).abs() < 1e-3);
        prop_assert!((derive_t_dohr_ms(&obs) - query).abs() < 1e-3);
    }

    /// Violating the (t11+t12) ≈ (t5+t6) assumption by δ shifts the DoHR
    /// estimate by exactly δ — and t_DoH stays exact.
    #[test]
    fn dohr_error_equals_assumption_gap(
        rtt in 1.0f64..500.0,
        connect in 0.5f64..300.0,
        delta in -50.0f64..50.0,
        query in 1.0f64..800.0,
    ) {
        // Keep the TLS leg non-negative.
        prop_assume!(connect + delta >= 0.0);
        let obs = observation(rtt, 20.0, connect, 5.0, delta, query);
        prop_assert!((derive_t_doh_ms(&obs) - obs.truth_t_doh.as_millis_f64()).abs() < 1e-3);
        let err = derive_t_dohr_ms(&obs) - obs.truth_t_dohr.as_millis_f64();
        prop_assert!((err - delta).abs() < 1e-3, "err {err} delta {delta}");
    }

    /// DoH-N is monotone decreasing in N and bounded by [t_DoHR, t_DoH].
    #[test]
    fn doh_n_monotone_and_bounded(
        t_doh in 1.0f64..2000.0,
        frac in 0.05f64..1.0,
        n1 in 1u32..1000,
        n2 in 1u32..1000,
    ) {
        let t_dohr = t_doh * frac;
        let (lo_n, hi_n) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        let v_lo = doh_n_ms(t_doh, t_dohr, lo_n);
        let v_hi = doh_n_ms(t_doh, t_dohr, hi_n);
        prop_assert!(v_hi <= v_lo + 1e-9);
        prop_assert!(v_lo <= t_doh + 1e-9);
        prop_assert!(v_hi >= t_dohr - 1e-9);
        prop_assert!((doh_n_ms(t_doh, t_dohr, 1) - t_doh).abs() < 1e-12);
    }

    /// Unaccounted forwarding overhead ε in phase 2 inflates t_DoH by
    /// exactly ε (Assumption 2's failure mode).
    #[test]
    fn phase2_noise_maps_linearly(
        rtt in 1.0f64..300.0,
        query in 1.0f64..500.0,
        eps in 0.0f64..20.0,
    ) {
        let clean = observation(rtt, 10.0, 30.0, 5.0, 0.0, query);
        let mut noisy = clean;
        noisy.t_d += SimDuration::from_millis_f64(eps);
        let diff = derive_t_doh_ms(&noisy) - derive_t_doh_ms(&clean);
        prop_assert!((diff - eps).abs() < 1e-3);
    }
}
