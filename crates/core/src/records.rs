//! Dataset schema.
//!
//! One [`ClientRecord`] per unique client, carrying the derived
//! measurements the analyses consume. Raw client IPs are never stored —
//! only the /24 prefix — matching the paper's ethics posture.

use dohperf_netsim::connection::DnsTransport;
use dohperf_netsim::topology::GeoPoint;
use dohperf_providers::provider::ProviderKind;
use dohperf_world::geoloc::Prefix24;
use serde::{Deserialize, Serialize};

/// Where a client's Do53 number came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Do53Source {
    /// The BrightData header (valid outside Super Proxy countries).
    BrightDataHeader,
    /// RIPE Atlas country-level remedy (the 11 Super Proxy countries);
    /// per-client DoH↔Do53 comparisons are not possible (§3.5).
    RipeAtlasRemedy,
}

/// One provider's measurements for one client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DohSample {
    /// Which provider.
    pub provider: ProviderKind,
    /// Derived first-request time (Equation 7), ms.
    pub t_doh_ms: f64,
    /// Derived connection-reuse time (Equation 8), ms.
    pub t_dohr_ms: f64,
    /// Index of the PoP that served this client.
    pub pop_index: usize,
    /// Geodesic distance to the serving PoP, miles.
    pub pop_distance_miles: f64,
    /// Geodesic distance to the *closest* PoP in the fleet, miles.
    pub nearest_pop_distance_miles: f64,
}

impl DohSample {
    /// Potential improvement (Figure 6): how much closer the best PoP is.
    pub fn potential_improvement_miles(&self) -> f64 {
        (self.pop_distance_miles - self.nearest_pop_distance_miles).max(0.0)
    }

    /// DoH-N amortised time, ms.
    pub fn doh_n_ms(&self, n: u32) -> f64 {
        crate::equations::doh_n_ms(self.t_doh_ms, self.t_dohr_ms, n)
    }
}

/// One transport's connection-lifecycle measurement for one
/// (client, provider) pair — the extended campaign's cold/warm/resumed
/// dimension (DESIGN.md §13). Present only when the campaign enables
/// transports beyond the legacy DoH/Do53 pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransportSample {
    /// Which transport carried the queries.
    pub transport: DnsTransport,
    /// Which provider PoP was queried.
    pub provider: ProviderKind,
    /// Cold (first-request) time: bootstrap + full handshake + query
    /// (Eq T3), ms.
    pub cold_ms: f64,
    /// Warm (connection-reuse) query time (Eq T4), ms.
    pub warm_ms: f64,
    /// Resumed query time after idle timeout (Eq T5), ms.
    pub resumed_ms: f64,
    /// Cold connection-establishment time alone (Eq T2), ms.
    pub handshake_ms: f64,
}

impl TransportSample {
    /// Amortised per-request time over `n` requests on one connection —
    /// the DoH-N analogue for any transport.
    pub fn amortized_ms(&self, n: u32) -> f64 {
        crate::equations::doh_n_ms(self.cold_ms, self.warm_ms, n)
    }
}

/// One page-load measurement for one (client, provider, transport)
/// triple — the page-load workload's PLT dimension (DESIGN.md §15).
/// Present only when the campaign enables `pages_per_client`.
///
/// The page is a synthetic dependency DAG of DNS resolutions; PLT is
/// the critical path through that DAG with every query multiplexed
/// over one shared connection. The cold visit starts with an empty
/// `DnsCache` and a cold connection; warm visits revisit the same page
/// with the cache and connection still live.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageSample {
    /// Which transport carried every resolution of the page.
    pub transport: DnsTransport,
    /// Which provider PoP the shared connection targeted.
    pub provider: ProviderKind,
    /// DAG nodes: resource fetches that each need a resolution.
    pub domains: u32,
    /// Distinct hostnames among the nodes (shared CDN hosts repeat).
    pub unique_names: u32,
    /// Longest dependency chain in the DAG (root is depth 0).
    pub depth: u32,
    /// Critical-path PLT of the cold visit (empty cache, cold
    /// connection), ms.
    pub plt_cold_ms: f64,
    /// Median critical-path PLT over the warm revisits, ms.
    pub plt_warm_ms: f64,
    /// Cache hits during the cold visit (intra-page duplicates only).
    pub cold_cache_hits: u32,
    /// Cache hits summed over the warm revisits (cross-page reuse).
    pub warm_cache_hits: u32,
}

impl PageSample {
    /// How much the warm revisit saves over the cold visit, ms.
    pub fn warm_savings_ms(&self) -> f64 {
        self.plt_cold_ms - self.plt_warm_ms
    }
}

/// One windowed time-series summary for one (window, provider,
/// transport) cell of one client — the substrate of the `repro
/// timeline` analysis (DESIGN.md §16). Present only when the campaign
/// enables windowing (`window_nanos > 0`).
///
/// Availability is `successes / queries`; today's simulator always
/// answers, so the fraction is 1.0 everywhere — the field exists so the
/// ROADMAP's outage scenarios have somewhere to land failures without a
/// schema change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowSample {
    /// Simulated-time window index (`window_start / window_nanos`).
    pub window: u32,
    /// Which provider the queries targeted.
    pub provider: ProviderKind,
    /// Which transport carried the queries.
    pub transport: DnsTransport,
    /// Resolutions attempted in the window.
    pub queries: u32,
    /// Resolutions that succeeded.
    pub successes: u32,
    /// Representative query latency for the cell, ms (0 for cache-only
    /// cells such as page-load rows).
    pub latency_ms: f64,
    /// Cache probes issued (0 for non-page cells).
    pub cache_lookups: u32,
    /// Cache probes that hit.
    pub cache_hits: u32,
}

impl WindowSample {
    /// Success fraction (1.0 when the cell saw no queries).
    pub fn availability(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            self.successes as f64 / self.queries as f64
        }
    }
}

/// One client's full record.
///
/// `Serialize`-only: records reference the `'static` country table, so
/// they export to JSON/CSV but are not meant to round-trip back in.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClientRecord {
    /// Super Proxy-assigned unique client id.
    pub client_id: u64,
    /// Ground-truth country (BrightData targeting).
    pub country_iso: &'static str,
    /// Index into the campaign's country list.
    pub country_index: usize,
    /// The client's /24 prefix.
    pub prefix: Prefix24,
    /// Maxmind-reported country for the prefix.
    pub maxmind_country: &'static str,
    /// Client position (from the /24, as the paper geolocates).
    pub position: GeoPoint,
    /// Geodesic distance from the client to the authoritative NS, miles.
    pub nameserver_distance_miles: f64,
    /// Per-provider samples, in measurement order.
    pub doh: Vec<DohSample>,
    /// Do53 baseline, ms (None when only the Atlas remedy covers the
    /// client's country and no per-client value exists).
    pub do53_ms: Option<f64>,
    /// Provenance of the Do53 number.
    pub do53_source: Do53Source,
    /// Extended-transport lifecycle samples, in (transport, provider)
    /// measurement order. Empty for legacy DoH/Do53-only campaigns.
    pub transports: Vec<TransportSample>,
    /// Page-load samples, in (transport, provider) measurement order.
    /// Empty unless the campaign enables the page-load workload.
    pub pages: Vec<PageSample>,
    /// Windowed time-series summaries, in measurement order. Empty
    /// unless the campaign enables windowing (the hand-rolled exporters
    /// ignore this field, so legacy exports stay byte-identical).
    pub windows: Vec<WindowSample>,
}

impl ClientRecord {
    /// The sample for one provider, if measured.
    pub fn sample(&self, provider: ProviderKind) -> Option<&DohSample> {
        self.doh.iter().find(|s| s.provider == provider)
    }

    /// Whether BrightData's and Maxmind's countries agree — the §3.5
    /// filter keeps only agreeing records.
    pub fn countries_agree(&self) -> bool {
        self.country_iso == self.maxmind_country
    }

    /// The lifecycle sample for one (transport, provider), if measured.
    pub fn transport_sample(
        &self,
        transport: DnsTransport,
        provider: ProviderKind,
    ) -> Option<&TransportSample> {
        self.transports
            .iter()
            .find(|s| s.transport == transport && s.provider == provider)
    }

    /// The page-load sample for one (transport, provider), if measured.
    pub fn page_sample(
        &self,
        transport: DnsTransport,
        provider: ProviderKind,
    ) -> Option<&PageSample> {
        self.pages
            .iter()
            .find(|s| s.transport == transport && s.provider == provider)
    }

    /// The windowed summaries for one (transport, provider) cell, in
    /// measurement order.
    pub fn window_samples(
        &self,
        transport: DnsTransport,
        provider: ProviderKind,
    ) -> impl Iterator<Item = &WindowSample> {
        self.windows
            .iter()
            .filter(move |s| s.transport == transport && s.provider == provider)
    }
}

/// The campaign's output.
#[derive(Debug, Clone, Serialize)]
pub struct Dataset {
    /// Retained client records (mismatches already discarded).
    pub records: Vec<ClientRecord>,
    /// Country ISO codes, indexed by `country_index`.
    pub countries: Vec<&'static str>,
    /// Per-country Atlas Do53 samples (ms) for the 11 remedy countries.
    pub atlas_do53_ms: Vec<(usize, Vec<f64>)>,
    /// How many records the mismatch filter discarded.
    pub discarded_mismatches: usize,
    /// Unique ASes observed (synthesised from resolver diversity).
    pub observed_ases: usize,
    /// Unique recursive resolvers observed at the authoritative NS.
    pub observed_resolvers: usize,
}

impl Dataset {
    /// Fraction of collected records discarded by the mismatch filter.
    pub fn discard_fraction(&self) -> f64 {
        let total = self.records.len() + self.discarded_mismatches;
        if total == 0 {
            0.0
        } else {
            self.discarded_mismatches as f64 / total as f64
        }
    }

    /// Records in a country (by index).
    pub fn records_in(&self, country_index: usize) -> impl Iterator<Item = &ClientRecord> {
        self.records
            .iter()
            .filter(move |r| r.country_index == country_index)
    }

    /// Number of unique countries with at least one record.
    pub fn country_count(&self) -> usize {
        let mut seen = vec![false; self.countries.len()];
        for r in &self.records {
            seen[r.country_index] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// Country-level Atlas Do53 median, ms, if the remedy covers it.
    pub fn atlas_median_ms(&self, country_index: usize) -> Option<f64> {
        self.atlas_do53_ms
            .iter()
            .find(|(idx, _)| *idx == country_index)
            .map(|(_, xs)| {
                let mut v = xs.clone();
                v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                v[v.len() / 2]
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(provider: ProviderKind, used: f64, nearest: f64) -> DohSample {
        DohSample {
            provider,
            t_doh_ms: 400.0,
            t_dohr_ms: 250.0,
            pop_index: 0,
            pop_distance_miles: used,
            nearest_pop_distance_miles: nearest,
        }
    }

    #[test]
    fn potential_improvement_never_negative() {
        let s = sample(ProviderKind::Quad9, 100.0, 900.0);
        assert_eq!(s.potential_improvement_miles(), 0.0);
        let s2 = sample(ProviderKind::Quad9, 900.0, 100.0);
        assert_eq!(s2.potential_improvement_miles(), 800.0);
    }

    #[test]
    fn doh_n_uses_equations() {
        let s = sample(ProviderKind::Cloudflare, 1.0, 1.0);
        assert_eq!(s.doh_n_ms(1), 400.0);
        assert!((s.doh_n_ms(10) - 265.0).abs() < 1e-9);
    }

    #[test]
    fn record_lookup_and_agreement() {
        let rec = ClientRecord {
            client_id: 1,
            country_iso: "BR",
            country_index: 0,
            prefix: Prefix24(1),
            maxmind_country: "BR",
            position: GeoPoint::new(0.0, 0.0),
            nameserver_distance_miles: 4000.0,
            doh: vec![sample(ProviderKind::Google, 10.0, 5.0)],
            do53_ms: Some(250.0),
            do53_source: Do53Source::BrightDataHeader,
            transports: Vec::new(),
            pages: Vec::new(),
            windows: Vec::new(),
        };
        assert!(rec.countries_agree());
        assert!(rec.sample(ProviderKind::Google).is_some());
        assert!(rec.sample(ProviderKind::Quad9).is_none());
    }

    #[test]
    fn dataset_accounting() {
        let rec = ClientRecord {
            client_id: 1,
            country_iso: "BR",
            country_index: 0,
            prefix: Prefix24(1),
            maxmind_country: "BR",
            position: GeoPoint::new(0.0, 0.0),
            nameserver_distance_miles: 0.0,
            doh: Vec::new(),
            do53_ms: None,
            do53_source: Do53Source::RipeAtlasRemedy,
            transports: Vec::new(),
            pages: Vec::new(),
            windows: Vec::new(),
        };
        let ds = Dataset {
            records: vec![rec],
            countries: vec!["BR", "US"],
            atlas_do53_ms: vec![(1, vec![30.0, 10.0, 20.0])],
            discarded_mismatches: 1,
            observed_ases: 10,
            observed_resolvers: 8,
        };
        assert_eq!(ds.country_count(), 1);
        assert!((ds.discard_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(ds.atlas_median_ms(1), Some(20.0));
        assert_eq!(ds.atlas_median_ms(0), None);
        assert_eq!(ds.records_in(0).count(), 1);
    }
}
