//! # dohperf-core
//!
//! The paper's primary contribution: a methodology for measuring absolute
//! DoH and Do53 resolution times at proxy-network exit nodes **without
//! controlling the exit node**, using only four client-side timestamps and
//! the Super Proxy's timing headers.
//!
//! * [`equations`] — the §3.2–§3.4 timing algebra: recovering the
//!   client↔exit RTT (Equation 6), the DoH resolution time t_DoH
//!   (Equation 7), the connection-reuse time t_DoHR (Equation 8), and the
//!   DoH-N amortisation used throughout §5–§6.
//! * [`testbed`] — the fixed experimental infrastructure of Figure 1:
//!   measurement client, web server and authoritative name server (all in
//!   the US), the BrightData network, and the four provider deployments.
//! * [`records`] — the dataset schema: one record per client with
//!   per-provider DoH samples and the Do53 baseline.
//! * [`campaign`] — the full measurement campaign over 224 countries,
//!   including the Maxmind mismatch discard (§3.5) and the RIPE Atlas
//!   remedy for the 11 Super Proxy countries. Runs either in memory
//!   ([`Campaign::run`]) or streamed to a columnar store directory with
//!   bounded memory ([`Campaign::run_to_store`]).
//! * [`store_io`] — lossless conversion between [`ClientRecord`]s and
//!   `dohperf-store`'s primitive schema, plus store-directory read/write
//!   entry points.
//! * [`validation`] — the §4 ground-truth experiments (Tables 1 and 2,
//!   the §4.3 resolver-confirmation trace, and the §4.4 BrightData vs
//!   RIPE Atlas consistency check).

pub mod campaign;
pub mod equations;
pub mod export;
pub mod pageload;
pub mod records;
pub mod store_io;
pub mod testbed;
pub mod validation;

pub use campaign::{Campaign, CampaignConfig, ProtocolSet, StoreRunSummary};
pub use equations::{
    derive_rtt_ms, derive_t_doh_ms, derive_t_dohr_ms, derive_transport_cold_ms,
    derive_transport_handshake_ms, derive_transport_resumed_ms, derive_transport_warm_ms, doh_n_ms,
};
pub use export::{to_csv, to_jsonl};
pub use pageload::{PageModel, PageOutcome, PageProfile};
pub use records::{ClientRecord, Dataset, Do53Source, DohSample, PageSample, TransportSample};
pub use store_io::{fold_chunks, read_dataset, read_dataset_threads, read_records, write_dataset};
pub use testbed::Testbed;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::campaign::{Campaign, CampaignConfig, ProtocolSet};
    pub use crate::equations::{derive_rtt_ms, derive_t_doh_ms, derive_t_dohr_ms, doh_n_ms};
    pub use crate::records::{
        ClientRecord, Dataset, Do53Source, DohSample, PageSample, TransportSample,
    };
    pub use crate::testbed::Testbed;
    pub use crate::validation;
}
