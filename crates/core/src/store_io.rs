//! Lossless conversion between [`ClientRecord`]s and the columnar store.
//!
//! `dohperf-store` is dependency-free and stores only primitives
//! ([`StoreRecord`]); this module owns the mapping back to the rich
//! schema — interning two-byte ISO codes against the `'static` country
//! table and provider ordinals against [`ALL_PROVIDERS`] — plus the
//! directory-level read/write entry points:
//!
//! * [`write_dataset`] — spill an in-memory [`Dataset`] to a store
//!   directory (`records.chunks` + `manifest.bin`);
//! * [`read_dataset`] — materialise a full [`Dataset`] back, bit-exact
//!   (floats round-trip through raw bits, so a dataset written and read
//!   compares equal field-for-field); [`read_dataset_threads`] is the
//!   same with CRC + column decoding fanned across worker threads;
//! * [`read_records`] — stream records one chunk at a time for
//!   memory-bounded analysis; peak residency is one decoded chunk;
//! * [`fold_chunks`] — the parallel streaming primitive: decode and
//!   convert on `threads` workers, fold record batches on the calling
//!   thread in canonical chunk order (what keeps sketch-based analyses
//!   bit-identical to a serial scan at any thread count).
//!
//! [`crate::campaign::Campaign::run_to_store`] uses the same conversion
//! while streaming records straight off the measurement loop.

use crate::records::{
    ClientRecord, Dataset, Do53Source, DohSample, PageSample, TransportSample, WindowSample,
};
use dohperf_netsim::connection::DnsTransport;
use dohperf_netsim::topology::GeoPoint;
use dohperf_providers::provider::ALL_PROVIDERS;
use dohperf_store::{
    ChunkReader, ChunkWriter, Manifest, ReadStats, Result, StoreDohSample, StoreError,
    StorePageSample, StoreRecord, StoreTransportSample, StoreWindowSample, WriterStats,
    MANIFEST_FILE, RECORDS_FILE,
};
use dohperf_world::geoloc::Prefix24;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::time::Instant;

/// Project a rich record onto the store's primitive schema.
pub fn record_to_store(r: &ClientRecord) -> StoreRecord {
    StoreRecord {
        client_id: r.client_id,
        country_iso: iso_bytes(r.country_iso),
        country_index: r.country_index as u32,
        prefix: r.prefix.0,
        maxmind_country: iso_bytes(r.maxmind_country),
        lat: r.position.lat,
        lon: r.position.lon,
        nameserver_distance_miles: r.nameserver_distance_miles,
        doh: r
            .doh
            .iter()
            .map(|s| StoreDohSample {
                provider: ALL_PROVIDERS
                    .iter()
                    .position(|&p| p == s.provider)
                    .expect("every provider is in ALL_PROVIDERS") as u8,
                t_doh_ms: s.t_doh_ms,
                t_dohr_ms: s.t_dohr_ms,
                pop_index: s.pop_index as u32,
                pop_distance_miles: s.pop_distance_miles,
                nearest_pop_distance_miles: s.nearest_pop_distance_miles,
            })
            .collect(),
        do53_ms: r.do53_ms,
        do53_source: match r.do53_source {
            Do53Source::BrightDataHeader => 0,
            Do53Source::RipeAtlasRemedy => 1,
        },
        transports: r
            .transports
            .iter()
            .map(|s| StoreTransportSample {
                transport: DnsTransport::ALL
                    .iter()
                    .position(|&t| t == s.transport)
                    .expect("every transport is in DnsTransport::ALL")
                    as u8,
                provider: ALL_PROVIDERS
                    .iter()
                    .position(|&p| p == s.provider)
                    .expect("every provider is in ALL_PROVIDERS") as u8,
                cold_ms: s.cold_ms,
                warm_ms: s.warm_ms,
                resumed_ms: s.resumed_ms,
                handshake_ms: s.handshake_ms,
            })
            .collect(),
        pages: r
            .pages
            .iter()
            .map(|s| StorePageSample {
                transport: DnsTransport::ALL
                    .iter()
                    .position(|&t| t == s.transport)
                    .expect("every transport is in DnsTransport::ALL")
                    as u8,
                provider: ALL_PROVIDERS
                    .iter()
                    .position(|&p| p == s.provider)
                    .expect("every provider is in ALL_PROVIDERS") as u8,
                domains: s.domains,
                unique_names: s.unique_names,
                depth: s.depth,
                plt_cold_ms: s.plt_cold_ms,
                plt_warm_ms: s.plt_warm_ms,
                cold_cache_hits: s.cold_cache_hits,
                warm_cache_hits: s.warm_cache_hits,
            })
            .collect(),
        windows: r
            .windows
            .iter()
            .map(|s| StoreWindowSample {
                window: s.window,
                provider: ALL_PROVIDERS
                    .iter()
                    .position(|&p| p == s.provider)
                    .expect("every provider is in ALL_PROVIDERS") as u8,
                transport: DnsTransport::ALL
                    .iter()
                    .position(|&t| t == s.transport)
                    .expect("every transport is in DnsTransport::ALL")
                    as u8,
                queries: s.queries,
                successes: s.successes,
                latency_ms: s.latency_ms,
                cache_lookups: s.cache_lookups,
                cache_hits: s.cache_hits,
            })
            .collect(),
    }
}

/// Rebuild the rich record, re-interning countries and providers.
pub fn record_from_store(r: &StoreRecord) -> Result<ClientRecord> {
    let doh = r
        .doh
        .iter()
        .map(|s| {
            let provider = *ALL_PROVIDERS.get(s.provider as usize).ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "client {}: provider ordinal {} out of range (have {})",
                    r.client_id,
                    s.provider,
                    ALL_PROVIDERS.len()
                ))
            })?;
            Ok(DohSample {
                provider,
                t_doh_ms: s.t_doh_ms,
                t_dohr_ms: s.t_dohr_ms,
                pop_index: s.pop_index as usize,
                pop_distance_miles: s.pop_distance_miles,
                nearest_pop_distance_miles: s.nearest_pop_distance_miles,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let transports = r
        .transports
        .iter()
        .map(|s| {
            let transport = *DnsTransport::ALL.get(s.transport as usize).ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "client {}: transport ordinal {} out of range (have {})",
                    r.client_id,
                    s.transport,
                    DnsTransport::ALL.len()
                ))
            })?;
            let provider = *ALL_PROVIDERS.get(s.provider as usize).ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "client {}: transport provider ordinal {} out of range (have {})",
                    r.client_id,
                    s.provider,
                    ALL_PROVIDERS.len()
                ))
            })?;
            Ok(TransportSample {
                transport,
                provider,
                cold_ms: s.cold_ms,
                warm_ms: s.warm_ms,
                resumed_ms: s.resumed_ms,
                handshake_ms: s.handshake_ms,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let pages = r
        .pages
        .iter()
        .map(|s| {
            let transport = *DnsTransport::ALL.get(s.transport as usize).ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "client {}: page transport ordinal {} out of range (have {})",
                    r.client_id,
                    s.transport,
                    DnsTransport::ALL.len()
                ))
            })?;
            let provider = *ALL_PROVIDERS.get(s.provider as usize).ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "client {}: page provider ordinal {} out of range (have {})",
                    r.client_id,
                    s.provider,
                    ALL_PROVIDERS.len()
                ))
            })?;
            Ok(PageSample {
                transport,
                provider,
                domains: s.domains,
                unique_names: s.unique_names,
                depth: s.depth,
                plt_cold_ms: s.plt_cold_ms,
                plt_warm_ms: s.plt_warm_ms,
                cold_cache_hits: s.cold_cache_hits,
                warm_cache_hits: s.warm_cache_hits,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let windows = r
        .windows
        .iter()
        .map(|s| {
            let provider = *ALL_PROVIDERS.get(s.provider as usize).ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "client {}: window provider ordinal {} out of range (have {})",
                    r.client_id,
                    s.provider,
                    ALL_PROVIDERS.len()
                ))
            })?;
            let transport = *DnsTransport::ALL.get(s.transport as usize).ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "client {}: window transport ordinal {} out of range (have {})",
                    r.client_id,
                    s.transport,
                    DnsTransport::ALL.len()
                ))
            })?;
            Ok(WindowSample {
                window: s.window,
                provider,
                transport,
                queries: s.queries,
                successes: s.successes,
                latency_ms: s.latency_ms,
                cache_lookups: s.cache_lookups,
                cache_hits: s.cache_hits,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(ClientRecord {
        client_id: r.client_id,
        country_iso: intern_iso(r.country_iso, r.client_id)?,
        country_index: r.country_index as usize,
        prefix: Prefix24(r.prefix),
        maxmind_country: intern_iso(r.maxmind_country, r.client_id)?,
        position: GeoPoint::new(r.lat, r.lon),
        nameserver_distance_miles: r.nameserver_distance_miles,
        doh,
        do53_ms: r.do53_ms,
        do53_source: match r.do53_source {
            0 => Do53Source::BrightDataHeader,
            1 => Do53Source::RipeAtlasRemedy,
            n => {
                return Err(StoreError::Corrupt(format!(
                    "client {}: do53 source ordinal {n} is neither header (0) nor atlas (1)",
                    r.client_id
                )))
            }
        },
        transports,
        pages,
        windows,
    })
}

/// Two ASCII bytes from an ISO code (or the `"??"` failed-lookup marker).
pub(crate) fn iso_bytes(iso: &str) -> [u8; 2] {
    let b = iso.as_bytes();
    debug_assert_eq!(b.len(), 2, "ISO code {iso:?} is not two bytes");
    [b[0], b[1]]
}

/// Re-intern two ISO bytes against the `'static` country table.
fn intern_iso(bytes: [u8; 2], client_id: u64) -> Result<&'static str> {
    if bytes == *b"??" {
        return Ok("??");
    }
    let iso = std::str::from_utf8(&bytes).map_err(|_| {
        StoreError::Corrupt(format!(
            "client {client_id}: country bytes {bytes:?} are not ASCII"
        ))
    })?;
    dohperf_world::countries::country(iso)
        .map(|c| c.iso)
        .ok_or_else(|| {
            StoreError::Corrupt(format!(
                "client {client_id}: country {iso:?} is not in the embedded table"
            ))
        })
}

/// Write a materialised dataset to `dir` as a store directory.
///
/// Returns the chunk totals. `chunk_budget` 0 means the default. Mostly
/// for tests and conversions; the campaign's streaming path is
/// [`crate::campaign::Campaign::run_to_store`].
pub fn write_dataset(ds: &Dataset, dir: &Path, chunk_budget: usize) -> Result<WriterStats> {
    std::fs::create_dir_all(dir)?;
    let file = BufWriter::new(File::create(dir.join(RECORDS_FILE))?);
    let mut writer = ChunkWriter::new(file, chunk_budget);
    for r in &ds.records {
        writer.push(record_to_store(r))?;
    }
    let stats = writer.finish()?;
    let manifest = manifest_for(ds, stats);
    std::fs::write(dir.join(MANIFEST_FILE), manifest.encode())?;
    dohperf_telemetry::counter!("store.chunks_written").add(stats.chunks);
    dohperf_telemetry::counter!("store.bytes_written").add(stats.bytes);
    Ok(stats)
}

/// Build the manifest for a dataset whose chunks produced `stats`.
pub(crate) fn manifest_for(ds: &Dataset, stats: WriterStats) -> Manifest {
    Manifest {
        countries: ds.countries.iter().map(|iso| iso_bytes(iso)).collect(),
        atlas_do53_ms: ds
            .atlas_do53_ms
            .iter()
            .map(|(idx, samples)| (*idx as u32, samples.clone()))
            .collect(),
        discarded_mismatches: ds.discarded_mismatches as u64,
        observed_ases: ds.observed_ases as u64,
        observed_resolvers: ds.observed_resolvers as u64,
        total_records: stats.records,
        total_chunks: stats.chunks,
        total_bytes: stats.bytes,
    }
}

/// Read the manifest of a store directory.
pub fn read_manifest(dir: &Path) -> Result<Manifest> {
    let bytes = std::fs::read(dir.join(MANIFEST_FILE))?;
    Manifest::decode(&bytes)
}

/// Decode and fold a store's chunks with `threads` decode workers.
///
/// The calling thread scans the chunk stream and folds each chunk's
/// converted [`ClientRecord`] batch **in canonical chunk order**; CRC
/// verification, column decoding and store→rich conversion run on the
/// workers (`threads` 0 = one per core, 1 = inline). Results and error
/// ordinals are identical to a serial scan at every thread count.
///
/// Publishes the scan's wall-clock as the per-run `store.decode_ms`
/// gauge and counts every folded record in `store.records_streamed`.
pub fn fold_chunks<F>(dir: &Path, threads: usize, mut fold: F) -> Result<ReadStats>
where
    F: FnMut(Vec<ClientRecord>) -> Result<()>,
{
    let file = File::open(dir.join(RECORDS_FILE))?;
    let start = Instant::now();
    let stats = dohperf_store::fold_chunks(
        BufReader::new(file),
        threads,
        |_, records| {
            records
                .iter()
                .map(record_from_store)
                .collect::<Result<Vec<_>>>()
        },
        |records: Vec<ClientRecord>| {
            dohperf_telemetry::counter!("store.records_streamed").add(records.len() as u64);
            fold(records)
        },
    )?;
    dohperf_telemetry::gauge!("store.decode_ms", per_run).set(start.elapsed().as_millis() as i64);
    Ok(stats)
}

/// Materialise the full [`Dataset`] from a store directory.
///
/// The result is bit-exact with the dataset that was written: floats
/// round-trip through raw bits and countries re-intern to the same
/// `'static` table entries.
pub fn read_dataset(dir: &Path) -> Result<Dataset> {
    read_dataset_threads(dir, 1)
}

/// [`read_dataset`] with chunk decoding fanned across `threads` worker
/// threads (0 = one per core). Bit-exact with the serial read: the
/// record order is the canonical chunk order regardless of which worker
/// decoded what.
pub fn read_dataset_threads(dir: &Path, threads: usize) -> Result<Dataset> {
    let manifest = read_manifest(dir)?;
    let mut records = Vec::with_capacity(manifest.total_records as usize);
    fold_chunks(dir, threads, |mut batch| {
        records.append(&mut batch);
        Ok(())
    })?;
    if records.len() as u64 != manifest.total_records {
        return Err(StoreError::Corrupt(format!(
            "store {}: manifest promises {} records, chunks hold {}",
            dir.display(),
            manifest.total_records,
            records.len()
        )));
    }
    let countries = manifest
        .countries
        .iter()
        .map(|&iso| intern_iso(iso, 0))
        .collect::<Result<Vec<_>>>()?;
    Ok(Dataset {
        records,
        countries,
        atlas_do53_ms: manifest
            .atlas_do53_ms
            .iter()
            .map(|(idx, samples)| (*idx as usize, samples.clone()))
            .collect(),
        discarded_mismatches: manifest.discarded_mismatches as usize,
        observed_ases: manifest.observed_ases as usize,
        observed_resolvers: manifest.observed_resolvers as usize,
    })
}

/// Stream rich records from a store directory, one chunk resident at a
/// time. Counts every yielded record in `store.records_streamed`.
pub fn read_records(dir: &Path) -> Result<RecordStream> {
    let file = File::open(dir.join(RECORDS_FILE))?;
    Ok(RecordStream {
        inner: ChunkReader::new(BufReader::new(file)),
    })
}

/// Iterator adapter over [`ChunkReader`] yielding rich [`ClientRecord`]s.
pub struct RecordStream {
    inner: ChunkReader<BufReader<File>>,
}

impl RecordStream {
    /// Chunks fully decoded so far.
    pub fn chunks_read(&self) -> u64 {
        self.inner.chunks_read()
    }
}

impl Iterator for RecordStream {
    type Item = Result<ClientRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let converted = item.and_then(|r| record_from_store(&r));
        if converted.is_ok() {
            dohperf_telemetry::counter!("store.records_streamed").inc();
        }
        Some(converted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| {
            Campaign::new(CampaignConfig {
                scale: 0.02,
                ..CampaignConfig::quick(9)
            })
            .run()
        })
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dohperf-store-io-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn record_conversion_round_trips() {
        for r in &dataset().records {
            let back = record_from_store(&record_to_store(r)).unwrap();
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn dataset_round_trips_through_a_store_directory() {
        let ds = dataset();
        let dir = temp_dir("roundtrip");
        let stats = write_dataset(ds, &dir, 64).unwrap();
        assert_eq!(stats.records as usize, ds.records.len());
        let back = read_dataset(&dir).unwrap();
        assert_eq!(back.records, ds.records);
        assert_eq!(back.countries, ds.countries);
        assert_eq!(back.atlas_do53_ms, ds.atlas_do53_ms);
        assert_eq!(back.discarded_mismatches, ds.discarded_mismatches);
        assert_eq!(back.observed_ases, ds.observed_ases);
        assert_eq!(back.observed_resolvers, ds.observed_resolvers);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_read_matches_manifest_totals() {
        let ds = dataset();
        let dir = temp_dir("stream");
        write_dataset(ds, &dir, 32).unwrap();
        let manifest = read_manifest(&dir).unwrap();
        let mut stream = read_records(&dir).unwrap();
        let n = stream.by_ref().filter(|r| r.is_ok()).count();
        assert_eq!(n as u64, manifest.total_records);
        assert_eq!(stream.chunks_read(), manifest.total_chunks);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_country_bytes_are_rejected() {
        let mut store = record_to_store(&dataset().records[0]);
        store.country_iso = *b"zq";
        let err = record_from_store(&store).unwrap_err().to_string();
        assert!(err.contains("not in the embedded table"), "{err}");
    }

    #[test]
    fn bad_provider_ordinal_is_rejected() {
        let mut store = record_to_store(&dataset().records[0]);
        store.doh[0].provider = 200;
        let err = record_from_store(&store).unwrap_err().to_string();
        assert!(err.contains("provider ordinal 200"), "{err}");
    }

    #[test]
    fn bad_transport_ordinals_are_rejected() {
        let bad_sample = |transport: u8, provider: u8| StoreTransportSample {
            transport,
            provider,
            cold_ms: 1.0,
            warm_ms: 1.0,
            resumed_ms: 1.0,
            handshake_ms: 1.0,
        };
        let mut store = record_to_store(&dataset().records[0]);
        store.transports.push(bad_sample(9, 0));
        let err = record_from_store(&store).unwrap_err().to_string();
        assert!(err.contains("transport ordinal 9"), "{err}");

        let mut store = record_to_store(&dataset().records[0]);
        store.transports.push(bad_sample(0, 77));
        let err = record_from_store(&store).unwrap_err().to_string();
        assert!(err.contains("transport provider ordinal 77"), "{err}");
    }

    #[test]
    fn bad_page_ordinals_are_rejected() {
        let bad_sample = |transport: u8, provider: u8| StorePageSample {
            transport,
            provider,
            domains: 12,
            unique_names: 10,
            depth: 3,
            plt_cold_ms: 1.0,
            plt_warm_ms: 1.0,
            cold_cache_hits: 2,
            warm_cache_hits: 10,
        };
        let mut store = record_to_store(&dataset().records[0]);
        store.pages.push(bad_sample(11, 0));
        let err = record_from_store(&store).unwrap_err().to_string();
        assert!(err.contains("page transport ordinal 11"), "{err}");

        let mut store = record_to_store(&dataset().records[0]);
        store.pages.push(bad_sample(0, 66));
        let err = record_from_store(&store).unwrap_err().to_string();
        assert!(err.contains("page provider ordinal 66"), "{err}");
    }

    #[test]
    fn bad_window_ordinals_are_rejected() {
        let bad_sample = |transport: u8, provider: u8| StoreWindowSample {
            window: 3,
            provider,
            transport,
            queries: 4,
            successes: 4,
            latency_ms: 120.0,
            cache_lookups: 0,
            cache_hits: 0,
        };
        let mut store = record_to_store(&dataset().records[0]);
        store.windows.push(bad_sample(13, 0));
        let err = record_from_store(&store).unwrap_err().to_string();
        assert!(err.contains("window transport ordinal 13"), "{err}");

        let mut store = record_to_store(&dataset().records[0]);
        store.windows.push(bad_sample(0, 88));
        let err = record_from_store(&store).unwrap_err().to_string();
        assert!(err.contains("window provider ordinal 88"), "{err}");
    }

    #[test]
    fn bad_do53_source_is_rejected() {
        let mut store = record_to_store(&dataset().records[0]);
        store.do53_source = 7;
        let err = record_from_store(&store).unwrap_err().to_string();
        assert!(err.contains("do53 source ordinal 7"), "{err}");
    }
}
