//! The timing algebra of §3.2–§3.4.
//!
//! Known quantities per measurement:
//!
//! * `T_A`–`T_D` — client-side timestamps (Figure 2 points A–D);
//! * `dns = t3+t4`, `connect = t5+t6` — from `X-luminati-tun-timeline`;
//! * `t_BrightData` — from `X-luminati-timeline`.
//!
//! Equation 6 recovers the client↔exit RTT; Equation 7 the DoH time:
//!
//! ```text
//! RTT   = (T_B − T_A) − (t3+t4+t5+t6) − t_BrightData               (6)
//! t_DoH = (T_D − T_C) − 2·(T_B − T_A) + 3·(t3+t4+t5+t6)
//!         + 2·t_BrightData                                          (7)
//! t_DoHR = t_DoH − (t3+t4+t5+t6) − (t11+t12),  (t11+t12) ≈ (t5+t6)  (8)
//! ```
//!
//! Derived values are in **fractional milliseconds as `f64`** rather than
//! unsigned durations: the derivation subtracts large quantities, and a
//! measurement corrupted by jitter can legitimately come out slightly
//! negative — the methodology must surface that rather than clamp it away.

use dohperf_proxy::lifecycle::TransportObservation;
use dohperf_proxy::observation::DohObservation;
use dohperf_telemetry as telemetry;

/// Equation 6: the recovered client↔exit round-trip time, in ms.
pub fn derive_rtt_ms(obs: &DohObservation) -> f64 {
    let tb_ta = obs.t_b.saturating_since(obs.t_a).as_millis_f64();
    tb_ta - obs.tun.total().as_millis_f64() - obs.proxy.total().as_millis_f64()
}

/// Equation 7: the derived DoH resolution time, in ms.
pub fn derive_t_doh_ms(obs: &DohObservation) -> f64 {
    let td_tc = obs.t_d.saturating_since(obs.t_c).as_millis_f64();
    let tb_ta = obs.t_b.saturating_since(obs.t_a).as_millis_f64();
    td_tc - 2.0 * tb_ta
        + 3.0 * obs.tun.total().as_millis_f64()
        + 2.0 * obs.proxy.total().as_millis_f64()
}

/// Equation 8: the derived connection-reuse query time, in ms, using the
/// paper's `(t11+t12) ≈ (t5+t6)` approximation.
pub fn derive_t_dohr_ms(obs: &DohObservation) -> f64 {
    derive_t_doh_ms(obs) - obs.tun.total().as_millis_f64() - obs.tun.connect.as_millis_f64()
}

/// DoH-N: the average per-request time over `n` requests on one
/// connection — the first pays `t_doh` (handshake included), the rest pay
/// `t_dohr` (§5, "Terminology").
pub fn doh_n_ms(t_doh_ms: f64, t_dohr_ms: f64, n: u32) -> f64 {
    assert!(n >= 1, "DoH-N needs at least one request");
    (t_doh_ms + f64::from(n - 1) * t_dohr_ms) / f64::from(n)
}

/// Struct-of-arrays accumulator for batched Eq 6–8 derivation.
///
/// The campaign's hot loop pushes one row of derivation inputs per
/// observation and derives a whole block at once: [`DerivationBatch::derive`]
/// walks plain `f64` slices in two tight passes the compiler can
/// vectorise, with the element-wise operation order of
/// [`derive_t_doh_ms`] / [`derive_t_dohr_ms`] preserved exactly — batched
/// outputs are **bit-identical** to the scalar path (IEEE 754 operations
/// are deterministic and Rust never contracts `a*b+c` into an FMA), which
/// the `batch_matches_scalar_bit_for_bit` test pins.
///
/// All columns are preallocated via [`DerivationBatch::with_capacity`] and
/// recycled with [`DerivationBatch::clear`], so steady-state use never
/// allocates (the alloc-smoke gate covers this through the campaign).
#[derive(Debug, Default)]
pub struct DerivationBatch {
    tb_ta_ms: Vec<f64>,
    td_tc_ms: Vec<f64>,
    tun_total_ms: Vec<f64>,
    tun_connect_ms: Vec<f64>,
    proxy_total_ms: Vec<f64>,
    t_doh_ms: Vec<f64>,
    t_dohr_ms: Vec<f64>,
}

impl DerivationBatch {
    /// A batch with room for `n` observations in every column.
    pub fn with_capacity(n: usize) -> Self {
        DerivationBatch {
            tb_ta_ms: Vec::with_capacity(n),
            td_tc_ms: Vec::with_capacity(n),
            tun_total_ms: Vec::with_capacity(n),
            tun_connect_ms: Vec::with_capacity(n),
            proxy_total_ms: Vec::with_capacity(n),
            t_doh_ms: Vec::with_capacity(n),
            t_dohr_ms: Vec::with_capacity(n),
        }
    }

    /// Forget all rows, keeping the column allocations.
    pub fn clear(&mut self) {
        self.tb_ta_ms.clear();
        self.td_tc_ms.clear();
        self.tun_total_ms.clear();
        self.tun_connect_ms.clear();
        self.proxy_total_ms.clear();
        self.t_doh_ms.clear();
        self.t_dohr_ms.clear();
    }

    /// Rows currently accumulated.
    pub fn len(&self) -> usize {
        self.tb_ta_ms.len()
    }

    /// True when no rows are accumulated.
    pub fn is_empty(&self) -> bool {
        self.tb_ta_ms.is_empty()
    }

    /// Append one observation's derivation inputs.
    pub fn push(&mut self, obs: &DohObservation) {
        self.tb_ta_ms
            .push(obs.t_b.saturating_since(obs.t_a).as_millis_f64());
        self.td_tc_ms
            .push(obs.t_d.saturating_since(obs.t_c).as_millis_f64());
        self.tun_total_ms.push(obs.tun.total().as_millis_f64());
        self.tun_connect_ms.push(obs.tun.connect.as_millis_f64());
        self.proxy_total_ms.push(obs.proxy.total().as_millis_f64());
    }

    /// Derive Eq 7 and Eq 8 for every accumulated row.
    pub fn derive(&mut self) {
        let n = self.len();
        self.t_doh_ms.clear();
        self.t_doh_ms.resize(n, 0.0);
        self.t_dohr_ms.clear();
        self.t_dohr_ms.resize(n, 0.0);
        // Element-wise op order matches derive_t_doh_ms exactly:
        // ((td_tc - 2*tb_ta) + 3*tun) + 2*proxy.
        for i in 0..n {
            self.t_doh_ms[i] = self.td_tc_ms[i] - 2.0 * self.tb_ta_ms[i]
                + 3.0 * self.tun_total_ms[i]
                + 2.0 * self.proxy_total_ms[i];
        }
        // ... and derive_t_dohr_ms: (t_doh - tun_total) - tun_connect.
        for i in 0..n {
            self.t_dohr_ms[i] = self.t_doh_ms[i] - self.tun_total_ms[i] - self.tun_connect_ms[i];
        }
    }

    /// The derived Eq 7 column (valid after [`DerivationBatch::derive`]).
    pub fn t_doh_ms(&self) -> &[f64] {
        &self.t_doh_ms
    }

    /// The derived Eq 8 column (valid after [`DerivationBatch::derive`]).
    pub fn t_dohr_ms(&self) -> &[f64] {
        &self.t_dohr_ms
    }

    /// Mutable Eq 7 column, for in-place median extraction.
    pub fn t_doh_ms_mut(&mut self) -> &mut [f64] {
        &mut self.t_doh_ms
    }

    /// Mutable Eq 8 column, for in-place median extraction.
    pub fn t_dohr_ms_mut(&mut self) -> &mut [f64] {
        &mut self.t_dohr_ms
    }
}

/// The Eq 1–8 derivation of one observation, with every input and
/// intermediate pinned, for the flight recorder and `repro explain`.
///
/// [`DerivationExplain::from_observation`] computes the final values by
/// calling [`derive_rtt_ms`] / [`derive_t_doh_ms`] / [`derive_t_dohr_ms`]
/// — not by re-deriving them locally — so the explained numbers are
/// **bit-for-bit** the ones the campaign stores.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivationExplain {
    /// `T_A`, simulated nanoseconds.
    pub t_a_nanos: u64,
    /// `T_B`, simulated nanoseconds.
    pub t_b_nanos: u64,
    /// `T_C`, simulated nanoseconds.
    pub t_c_nanos: u64,
    /// `T_D`, simulated nanoseconds.
    pub t_d_nanos: u64,
    /// Eq 1 input: `T_B − T_A`, ms.
    pub tb_ta_ms: f64,
    /// Eq 2 input: `T_D − T_C`, ms.
    pub td_tc_ms: f64,
    /// Eq 3: `t3+t4` from `X-luminati-tun-timeline` (`dns`), ms.
    pub tun_dns_ms: f64,
    /// Eq 4: `t5+t6` from `X-luminati-tun-timeline` (`connect`), ms.
    pub tun_connect_ms: f64,
    /// `X-luminati-timeline` `auth` component, ms.
    pub proxy_auth_ms: f64,
    /// `X-luminati-timeline` `init` component, ms.
    pub proxy_init_ms: f64,
    /// `X-luminati-timeline` `select` component, ms.
    pub proxy_select_ms: f64,
    /// `X-luminati-timeline` `domain_check` component, ms.
    pub proxy_domain_check_ms: f64,
    /// Eq 5: `t_BrightData` (sum of the four proxy components), ms.
    pub t_bd_ms: f64,
    /// Eq 6 output: recovered client↔exit RTT, ms.
    pub rtt_ms: f64,
    /// Eq 7 output: derived DoH resolution time, ms.
    pub t_doh_ms: f64,
    /// Eq 8 output: derived connection-reuse query time, ms.
    pub t_dohr_ms: f64,
}

impl DerivationExplain {
    /// Work Eq 1–8 for `obs`, preserving bit-exact equality with the
    /// plain `derive_*` functions.
    pub fn from_observation(obs: &DohObservation) -> Self {
        DerivationExplain {
            t_a_nanos: obs.t_a.as_nanos(),
            t_b_nanos: obs.t_b.as_nanos(),
            t_c_nanos: obs.t_c.as_nanos(),
            t_d_nanos: obs.t_d.as_nanos(),
            tb_ta_ms: obs.t_b.saturating_since(obs.t_a).as_millis_f64(),
            td_tc_ms: obs.t_d.saturating_since(obs.t_c).as_millis_f64(),
            tun_dns_ms: obs.tun.dns.as_millis_f64(),
            tun_connect_ms: obs.tun.connect.as_millis_f64(),
            proxy_auth_ms: obs.proxy.auth.as_millis_f64(),
            proxy_init_ms: obs.proxy.init.as_millis_f64(),
            proxy_select_ms: obs.proxy.select_node.as_millis_f64(),
            proxy_domain_check_ms: obs.proxy.domain_check.as_millis_f64(),
            t_bd_ms: obs.proxy.total().as_millis_f64(),
            rtt_ms: derive_rtt_ms(obs),
            t_doh_ms: derive_t_doh_ms(obs),
            t_dohr_ms: derive_t_dohr_ms(obs),
        }
    }

    /// The `t3+t4+t5+t6` tunnel total, ms.
    pub fn tun_total_ms(&self) -> f64 {
        self.tun_dns_ms + self.tun_connect_ms
    }

    /// The derivation, one equation per line, in the paper's order and
    /// notation. `{:.3}` formatting for human reading; bit-exact values
    /// live in the struct fields (and in the flight-recorder attributes,
    /// which use shortest-round-trip formatting).
    pub fn lines(&self) -> Vec<String> {
        let tun = self.tun_total_ms();
        vec![
            format!(
                "Eq 1  T_B − T_A = {:.3} − {:.3} = {:.3} ms   (CONNECT round trip)",
                self.t_b_nanos as f64 / 1e6,
                self.t_a_nanos as f64 / 1e6,
                self.tb_ta_ms
            ),
            format!(
                "Eq 2  T_D − T_C = {:.3} − {:.3} = {:.3} ms   (HTTPS GET round trip)",
                self.t_d_nanos as f64 / 1e6,
                self.t_c_nanos as f64 / 1e6,
                self.td_tc_ms
            ),
            format!(
                "Eq 3  t3+t4 = {:.3} ms   (X-luminati-tun-timeline: dns)",
                self.tun_dns_ms
            ),
            format!(
                "Eq 4  t5+t6 = {:.3} ms   (X-luminati-tun-timeline: connect)",
                self.tun_connect_ms
            ),
            format!(
                "Eq 5  t_BD = auth {:.3} + init {:.3} + select {:.3} + domain_check {:.3} = {:.3} ms   (X-luminati-timeline)",
                self.proxy_auth_ms,
                self.proxy_init_ms,
                self.proxy_select_ms,
                self.proxy_domain_check_ms,
                self.t_bd_ms
            ),
            format!(
                "Eq 6  RTT = (T_B−T_A) − (t3+t4+t5+t6) − t_BD = {:.3} − {:.3} − {:.3} = {:.3} ms",
                self.tb_ta_ms, tun, self.t_bd_ms, self.rtt_ms
            ),
            format!(
                "Eq 7  t_DoH = (T_D−T_C) − 2·(T_B−T_A) + 3·(t3+t4+t5+t6) + 2·t_BD = {:.3} − 2·{:.3} + 3·{:.3} + 2·{:.3} = {:.3} ms",
                self.td_tc_ms, self.tb_ta_ms, tun, self.t_bd_ms, self.t_doh_ms
            ),
            format!(
                "Eq 8  t_DoHR = t_DoH − (t3+t4+t5+t6) − (t5+t6) = {:.3} − {:.3} − {:.3} = {:.3} ms",
                self.t_doh_ms, tun, self.tun_connect_ms, self.t_dohr_ms
            ),
        ]
    }

    /// Attach the full derivation to `span` as flight-recorder
    /// attributes, one per equation. Values use Rust's shortest
    /// round-trip `f64` formatting, so a reader can recover the exact
    /// bits the campaign stored.
    pub fn annotate_span(&self, span: telemetry::flight::SpanToken) {
        use telemetry::flight::attr;
        let tun = self.tun_total_ms();
        attr(span, "eq1.tb_ta_ms", format!("{}", self.tb_ta_ms));
        attr(span, "eq2.td_tc_ms", format!("{}", self.td_tc_ms));
        attr(span, "eq3.tun_dns_ms", format!("{}", self.tun_dns_ms));
        attr(
            span,
            "eq4.tun_connect_ms",
            format!("{}", self.tun_connect_ms),
        );
        attr(
            span,
            "eq5.t_bd_ms",
            format!(
                "{} (auth {} + init {} + select {} + domain_check {})",
                self.t_bd_ms,
                self.proxy_auth_ms,
                self.proxy_init_ms,
                self.proxy_select_ms,
                self.proxy_domain_check_ms
            ),
        );
        attr(
            span,
            "eq6.rtt_ms",
            format!(
                "{} = {} - {} - {}",
                self.rtt_ms, self.tb_ta_ms, tun, self.t_bd_ms
            ),
        );
        attr(
            span,
            "eq7.t_doh_ms",
            format!(
                "{} = {} - 2*{} + 3*{} + 2*{}",
                self.t_doh_ms, self.td_tc_ms, self.tb_ta_ms, tun, self.t_bd_ms
            ),
        );
        attr(
            span,
            "eq8.t_dohr_ms",
            format!(
                "{} = {} - {} - {}",
                self.t_dohr_ms, self.t_doh_ms, tun, self.tun_connect_ms
            ),
        );
    }
}

// --- Per-protocol derivations (Eq 1–8 analogues for DoT/DoQ) ---------
//
// The extended transports are measured at the exit node itself, so no
// header algebra is required: the analogues are direct timestamp
// differences over the connection-lifecycle phases, labelled Eq T1–T6
// to mirror the paper's numbering.
//
// ```text
// Eq T1  t_bootstrap = T_BS − T_A          (t3+t4 analogue)
// Eq T2  t_handshake = T_HS − T_BS         (t5+t6 + t11+t12 analogue)
// Eq T3  t_cold      = T_COLD − T_A        (Eq 7 analogue)
// Eq T4  t_warm      = T_WARM' − T_WARM    (Eq 8 analogue)
// Eq T5  t_resumed   = T_RES' − T_RES      (no legacy analogue)
// Eq T6  saving      = t_handshake − (T_RES_HS − T_RES)
// ```

/// Eq T1: the bootstrap resolution time of the provider hostname, ms
/// (the `t3+t4` analogue; zero for plain Do53).
pub fn derive_transport_bootstrap_ms(obs: &TransportObservation) -> f64 {
    obs.t_bs.saturating_since(obs.t_a).as_millis_f64()
}

/// Eq T2: the cold connection-establishment time, ms (the
/// `t5+t6 + t11+t12` analogue — TCP+TLS for DoT/DoH, the QUIC Initial
/// flight for DoQ).
pub fn derive_transport_handshake_ms(obs: &TransportObservation) -> f64 {
    obs.t_hs.saturating_since(obs.t_bs).as_millis_f64()
}

/// Eq T3: the cold (first-request) transport time, ms — the Equation 7
/// analogue: bootstrap + handshake + first query.
pub fn derive_transport_cold_ms(obs: &TransportObservation) -> f64 {
    obs.t_cold_done.saturating_since(obs.t_a).as_millis_f64()
}

/// Eq T4: the warm (connection-reuse) query time, ms — the Equation 8
/// analogue, measured directly on the established connection instead
/// of via the paper's `(t11+t12) ≈ (t5+t6)` approximation.
pub fn derive_transport_warm_ms(obs: &TransportObservation) -> f64 {
    obs.t_warm_done
        .saturating_since(obs.t_warm_start)
        .as_millis_f64()
}

/// Eq T5: the resumed query time after idle timeout, ms (TLS 1.3
/// session-ticket resumption over a fresh TCP handshake; QUIC 0-RTT).
pub fn derive_transport_resumed_ms(obs: &TransportObservation) -> f64 {
    obs.t_resumed_done
        .saturating_since(obs.t_resumed_start)
        .as_millis_f64()
}

/// Eq T6: how much of the cold handshake the resumption machinery
/// saved, ms (the 0-RTT advantage Kosek et al. identify for DoQ).
pub fn derive_transport_resumption_saving_ms(obs: &TransportObservation) -> f64 {
    derive_transport_handshake_ms(obs)
        - obs
            .t_resumed_hs
            .saturating_since(obs.t_resumed_start)
            .as_millis_f64()
}

/// Record the Eq T1–T6 per-protocol derivation of `obs` as a zero-width
/// flight span at the lifecycle's last timestamp. No-op when no
/// recording is armed on this thread.
pub fn record_transport_derivation(obs: &TransportObservation) {
    if !telemetry::flight::active() {
        return;
    }
    let at = obs.t_resumed_done.as_nanos();
    let span = telemetry::flight::start_span(
        "equations",
        format!("derive {} Eq T1-T6", obs.transport.name()),
        at,
    );
    use telemetry::flight::attr;
    attr(span, "transport", obs.transport.name());
    attr(
        span,
        "eqT1.bootstrap_ms",
        format!("{}", derive_transport_bootstrap_ms(obs)),
    );
    attr(
        span,
        "eqT2.handshake_ms",
        format!("{}", derive_transport_handshake_ms(obs)),
    );
    attr(
        span,
        "eqT3.t_cold_ms",
        format!("{}", derive_transport_cold_ms(obs)),
    );
    attr(
        span,
        "eqT4.t_warm_ms",
        format!("{}", derive_transport_warm_ms(obs)),
    );
    attr(
        span,
        "eqT5.t_resumed_ms",
        format!("{}", derive_transport_resumed_ms(obs)),
    );
    attr(
        span,
        "eqT6.resumption_saving_ms",
        format!("{}", derive_transport_resumption_saving_ms(obs)),
    );
    telemetry::flight::end_span(span, at);
}

/// Record the Eq 1–8 derivation of `obs` as a zero-width flight span at
/// `T_D` (the moment the last timestamp lands). No-op when no recording
/// is armed on this thread.
pub fn record_derivation(obs: &DohObservation) -> DerivationExplain {
    let explain = DerivationExplain::from_observation(obs);
    if telemetry::flight::active() {
        let span = telemetry::flight::start_span("equations", "derive Eq 1-8", explain.t_d_nanos);
        explain.annotate_span(span);
        telemetry::flight::end_span(span, explain.t_d_nanos);
    }
    explain
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohperf_http::luminati::{ProxyTimeline, TunTimeline};
    use dohperf_netsim::time::{SimDuration, SimTime};

    /// Build a synthetic observation from exact leg timings so the
    /// equations can be checked against hand-computed values.
    fn synthetic(
        rtt_ms: f64,
        dns_ms: f64,
        connect_ms: f64,
        bd_ms: f64,
        tls_leg_ms: f64,
        query_total_ms: f64,
    ) -> DohObservation {
        let t_a = SimTime::from_nanos(0);
        let phase1 = rtt_ms + bd_ms + dns_ms + connect_ms;
        let t_b = t_a + SimDuration::from_millis_f64(phase1);
        let t_c = t_b;
        // Phase 2: 2 tunnel RTTs + TLS leg + query legs.
        let phase2 = 2.0 * rtt_ms + tls_leg_ms + query_total_ms;
        let t_d = t_c + SimDuration::from_millis_f64(phase2);
        DohObservation {
            t_a,
            t_b,
            t_c,
            t_d,
            tun: TunTimeline {
                dns: SimDuration::from_millis_f64(dns_ms),
                connect: SimDuration::from_millis_f64(connect_ms),
            },
            proxy: ProxyTimeline {
                auth: SimDuration::from_millis_f64(bd_ms),
                init: SimDuration::ZERO,
                select_node: SimDuration::ZERO,
                domain_check: SimDuration::ZERO,
            },
            truth_t_doh: SimDuration::from_millis_f64(
                dns_ms + connect_ms + tls_leg_ms + query_total_ms,
            ),
            truth_t_dohr: SimDuration::from_millis_f64(query_total_ms),
        }
    }

    #[test]
    fn equation_6_recovers_rtt_exactly_without_jitter() {
        let obs = synthetic(80.0, 20.0, 30.0, 10.0, 30.0, 90.0);
        assert!((derive_rtt_ms(&obs) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn equation_7_recovers_t_doh_exactly_without_jitter() {
        let obs = synthetic(80.0, 20.0, 30.0, 10.0, 30.0, 90.0);
        // Truth: dns+connect+tls_leg+query = 20+30+30+90 = 170.
        assert!((derive_t_doh_ms(&obs) - 170.0).abs() < 1e-9);
        assert!((derive_t_doh_ms(&obs) - obs.truth_t_doh.as_millis_f64()).abs() < 1e-9);
    }

    #[test]
    fn equation_8_matches_truth_when_tls_leg_equals_connect() {
        // The paper assumes (t11+t12) = (t5+t6); make them equal and the
        // derivation is exact.
        let obs = synthetic(80.0, 20.0, 30.0, 10.0, 30.0, 90.0);
        assert!((derive_t_dohr_ms(&obs) - 90.0).abs() < 1e-9);
    }

    #[test]
    fn equation_8_error_is_bounded_by_assumption_gap() {
        // TLS leg differs from connect by 7ms -> DoHR off by exactly 7ms.
        let obs = synthetic(80.0, 20.0, 30.0, 10.0, 37.0, 90.0);
        let err = derive_t_dohr_ms(&obs) - obs.truth_t_dohr.as_millis_f64();
        assert!((err - 7.0).abs() < 1e-9, "err {err}");
    }

    #[test]
    fn doh_n_interpolates_between_first_and_reused() {
        let t1 = doh_n_ms(400.0, 200.0, 1);
        let t10 = doh_n_ms(400.0, 200.0, 10);
        let t100 = doh_n_ms(400.0, 200.0, 100);
        assert_eq!(t1, 400.0);
        assert!((t10 - 220.0).abs() < 1e-9);
        assert!(t100 < t10 && t100 > 200.0);
        // Limit: as N grows, DoH-N approaches t_DoHR.
        assert!((doh_n_ms(400.0, 200.0, 100_000) - 200.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn doh_n_rejects_zero() {
        doh_n_ms(1.0, 1.0, 0);
    }

    /// Golden values: a fully hand-worked Figure-2 timeline, pinned
    /// number-for-number so any drift in the equation implementations
    /// (sign flips, dropped terms, unit slips) fails against arithmetic
    /// done on paper rather than against the same code path.
    ///
    /// Timeline (ms): RTT=80, t3+t4=20, t5+t6=30, t_BrightData=4+3+2+1=10
    /// (all four proxy sub-timings populated), TLS leg t11+t12=35,
    /// query legs=90. Client timestamps: T_A=5,
    /// T_B = T_C = 5 + (80+10+20+30) = 145, T_D = 145 + (2·80+35+90) = 430.
    #[test]
    fn golden_hand_computed_timeline() {
        let t_a = SimTime::from_nanos(5_000_000);
        let t_b = SimTime::from_nanos(145_000_000);
        let t_d = SimTime::from_nanos(430_000_000);
        let obs = DohObservation {
            t_a,
            t_b,
            t_c: t_b,
            t_d,
            tun: TunTimeline {
                dns: SimDuration::from_millis_f64(20.0),
                connect: SimDuration::from_millis_f64(30.0),
            },
            proxy: ProxyTimeline {
                auth: SimDuration::from_millis_f64(4.0),
                init: SimDuration::from_millis_f64(3.0),
                select_node: SimDuration::from_millis_f64(2.0),
                domain_check: SimDuration::from_millis_f64(1.0),
            },
            truth_t_doh: SimDuration::from_millis_f64(175.0),
            truth_t_dohr: SimDuration::from_millis_f64(90.0),
        };
        // Eq 6: (145−5) − (20+30) − 10 = 80.
        assert!((derive_rtt_ms(&obs) - 80.0).abs() < 1e-6);
        // Eq 7: (430−145) − 2·(145−5) + 3·(20+30) + 2·10
        //     = 285 − 280 + 150 + 20 = 175.
        assert!((derive_t_doh_ms(&obs) - 175.0).abs() < 1e-6);
        // Eq 8: 175 − (20+30) − 30 = 95. The 5ms excess over the 90ms
        // truth is exactly the assumption gap (t11+t12=35) − (t5+t6=30).
        assert!((derive_t_dohr_ms(&obs) - 95.0).abs() < 1e-6);
    }

    /// Golden values for the Super-Proxy-DNS quirk (§3.5): in the eleven
    /// Super Proxy countries the proxy resolves DNS itself, so the tunnel
    /// header reports only a token bootstrap time (2ms cache answer here)
    /// while phase 1 silently absorbs the proxy's real 48ms recursion.
    ///
    /// Timeline (ms): RTT=100, reported t3+t4=2, hidden recursion=48,
    /// t5+t6=30, t_BrightData=10, TLS leg=30, query legs=90. T_A=0,
    /// T_B = T_C = 100+10+2+48+30 = 190, T_D = 190 + (2·100+30+90) = 510.
    #[test]
    fn golden_super_proxy_dns_quirk_timeline() {
        let obs = DohObservation {
            t_a: SimTime::from_nanos(0),
            t_b: SimTime::from_nanos(190_000_000),
            t_c: SimTime::from_nanos(190_000_000),
            t_d: SimTime::from_nanos(510_000_000),
            tun: TunTimeline {
                dns: SimDuration::from_millis_f64(2.0),
                connect: SimDuration::from_millis_f64(30.0),
            },
            proxy: ProxyTimeline {
                auth: SimDuration::from_millis_f64(10.0),
                init: SimDuration::ZERO,
                select_node: SimDuration::ZERO,
                domain_check: SimDuration::ZERO,
            },
            truth_t_doh: SimDuration::from_millis_f64(152.0),
            truth_t_dohr: SimDuration::from_millis_f64(90.0),
        };
        // Eq 6: 190 − (2+30) − 10 = 148 — the unreported 48ms recursion
        // is fully misattributed to the client↔exit RTT, minus the 2ms
        // that was reported: 100 + 46.
        assert!((derive_rtt_ms(&obs) - 148.0).abs() < 1e-6);
        // Eq 7: 320 − 2·190 + 3·32 + 2·10 = 320 − 380 + 96 + 20 = 56.
        // Every unreported phase-1 ms is subtracted twice through the
        // −2·(T_B−T_A) term, so t_DoH lands 2·48 = 96ms under the 152ms
        // truth. This is why §3.5 discards header timings in Super Proxy
        // countries and remedies Do53 with RIPE Atlas instead.
        assert!((derive_t_doh_ms(&obs) - 56.0).abs() < 1e-6);
        let bias = derive_t_doh_ms(&obs) - obs.truth_t_doh.as_millis_f64();
        assert!((bias + 96.0).abs() < 1e-6, "bias {bias}");
        // Eq 8: 56 − 32 − 30 = −6 — legitimately negative, surfaced
        // rather than clamped (module-level contract).
        assert!((derive_t_dohr_ms(&obs) + 6.0).abs() < 1e-6);
    }

    /// The explain view must agree with the golden hand-worked timeline
    /// number for number — same fixture as `golden_hand_computed_timeline`
    /// — and bit-for-bit with the plain `derive_*` functions, since
    /// `repro explain` prints exactly these fields.
    #[test]
    fn golden_timeline_explain_matches_fixture() {
        let obs = DohObservation {
            t_a: SimTime::from_nanos(5_000_000),
            t_b: SimTime::from_nanos(145_000_000),
            t_c: SimTime::from_nanos(145_000_000),
            t_d: SimTime::from_nanos(430_000_000),
            tun: TunTimeline {
                dns: SimDuration::from_millis_f64(20.0),
                connect: SimDuration::from_millis_f64(30.0),
            },
            proxy: ProxyTimeline {
                auth: SimDuration::from_millis_f64(4.0),
                init: SimDuration::from_millis_f64(3.0),
                select_node: SimDuration::from_millis_f64(2.0),
                domain_check: SimDuration::from_millis_f64(1.0),
            },
            truth_t_doh: SimDuration::from_millis_f64(175.0),
            truth_t_dohr: SimDuration::from_millis_f64(90.0),
        };
        let explain = DerivationExplain::from_observation(&obs);
        // Bit-for-bit equality with the plain derivation functions.
        assert_eq!(explain.rtt_ms.to_bits(), derive_rtt_ms(&obs).to_bits());
        assert_eq!(explain.t_doh_ms.to_bits(), derive_t_doh_ms(&obs).to_bits());
        assert_eq!(
            explain.t_dohr_ms.to_bits(),
            derive_t_dohr_ms(&obs).to_bits()
        );
        // Inputs pinned to the hand-worked numbers.
        assert_eq!(explain.tb_ta_ms, 140.0);
        assert_eq!(explain.td_tc_ms, 285.0);
        assert_eq!(explain.tun_dns_ms, 20.0);
        assert_eq!(explain.tun_connect_ms, 30.0);
        assert_eq!(explain.t_bd_ms, 10.0);
        // The rendered lines carry the golden outputs.
        let lines = explain.lines();
        assert_eq!(lines.len(), 8, "one line per equation");
        assert!(lines[0].starts_with("Eq 1"));
        assert!(lines[5].contains("80.000"), "Eq 6 RTT: {}", lines[5]);
        assert!(lines[6].contains("175.000"), "Eq 7 t_DoH: {}", lines[6]);
        assert!(lines[7].contains("95.000"), "Eq 8 t_DoHR: {}", lines[7]);
    }

    /// `record_derivation` attaches all eight equations to a flight span
    /// with shortest-round-trip values that parse back to the exact bits.
    #[test]
    fn record_derivation_annotates_flight_span() {
        use dohperf_telemetry::flight;
        let obs = DohObservation {
            t_a: SimTime::from_nanos(5_000_000),
            t_b: SimTime::from_nanos(145_000_000),
            t_c: SimTime::from_nanos(145_000_000),
            t_d: SimTime::from_nanos(430_000_000),
            tun: TunTimeline {
                dns: SimDuration::from_millis_f64(20.0),
                connect: SimDuration::from_millis_f64(30.0),
            },
            proxy: ProxyTimeline {
                auth: SimDuration::from_millis_f64(4.0),
                init: SimDuration::from_millis_f64(3.0),
                select_node: SimDuration::from_millis_f64(2.0),
                domain_check: SimDuration::from_millis_f64(1.0),
            },
            truth_t_doh: SimDuration::from_millis_f64(175.0),
            truth_t_dohr: SimDuration::from_millis_f64(90.0),
        };
        flight::begin(flight::derive_trace_id(2021, "US", 1), 1, "US");
        let root = flight::start_span("test", "query", 0);
        let explain = record_derivation(&obs);
        flight::end_span(root, explain.t_d_nanos);
        let trace = flight::take().unwrap();
        let eq_span = trace
            .spans
            .iter()
            .find(|s| s.target == "equations")
            .expect("derivation span recorded");
        assert_eq!(eq_span.attrs.len(), 8);
        let (_, t_doh_attr) = eq_span
            .attrs
            .iter()
            .find(|(k, _)| *k == "eq7.t_doh_ms")
            .expect("Eq 7 attribute");
        let parsed: f64 = t_doh_attr
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(parsed.to_bits(), derive_t_doh_ms(&obs).to_bits());
    }

    /// Golden hand-computed lifecycle for the Eq T1–T6 analogues:
    /// a DoQ lifecycle with bootstrap 12ms, cold handshake 45ms
    /// (one QUIC flight + crypto), cold query 80ms, warm query 70ms,
    /// 0-RTT re-establishment (free) and a 75ms resumed query.
    /// T_A=0, T_BS=12, T_HS=57, T_COLD=137; warm 137→207; idle gap to
    /// 30_208; T_RES=30_208, T_RES_HS=30_208 (0-RTT), T_RES'=30_283.
    #[test]
    fn golden_transport_lifecycle_hand_computed() {
        use dohperf_netsim::connection::DnsTransport;
        let ms = |v: u64| SimTime::from_nanos(v * 1_000_000);
        let obs = TransportObservation {
            transport: DnsTransport::DoQ,
            t_a: ms(0),
            t_bs: ms(12),
            t_hs: ms(57),
            t_cold_done: ms(137),
            t_warm_start: ms(137),
            t_warm_done: ms(207),
            t_resumed_start: ms(30_208),
            t_resumed_hs: ms(30_208),
            t_resumed_done: ms(30_283),
            cold_framing: SimDuration::from_millis(4),
            warm_framing: SimDuration::from_millis(4),
            resumed_framing: SimDuration::from_millis(4),
            cold_generation: 1,
            resumed_generation: 2,
        };
        assert!((derive_transport_bootstrap_ms(&obs) - 12.0).abs() < 1e-9);
        assert!((derive_transport_handshake_ms(&obs) - 45.0).abs() < 1e-9);
        assert!((derive_transport_cold_ms(&obs) - 137.0).abs() < 1e-9);
        assert!((derive_transport_warm_ms(&obs) - 70.0).abs() < 1e-9);
        assert!((derive_transport_resumed_ms(&obs) - 75.0).abs() < 1e-9);
        // Eq T6: the 0-RTT resumption saves the entire 45ms handshake.
        assert!((derive_transport_resumption_saving_ms(&obs) - 45.0).abs() < 1e-9);
    }

    #[test]
    fn record_transport_derivation_annotates_flight_span() {
        use dohperf_netsim::connection::DnsTransport;
        use dohperf_telemetry::flight;
        let ms = |v: u64| SimTime::from_nanos(v * 1_000_000);
        let obs = TransportObservation {
            transport: DnsTransport::DoT,
            t_a: ms(0),
            t_bs: ms(10),
            t_hs: ms(90),
            t_cold_done: ms(170),
            t_warm_start: ms(170),
            t_warm_done: ms(240),
            t_resumed_start: ms(10_241),
            t_resumed_hs: ms(10_281),
            t_resumed_done: ms(10_351),
            cold_framing: SimDuration::from_millis(3),
            warm_framing: SimDuration::from_millis(3),
            resumed_framing: SimDuration::from_millis(3),
            cold_generation: 1,
            resumed_generation: 2,
        };
        flight::begin(flight::derive_trace_id(2021, "US", 2), 2, "US");
        let root = flight::start_span("test", "lifecycle", 0);
        record_transport_derivation(&obs);
        flight::end_span(root, obs.t_resumed_done.as_nanos());
        let trace = flight::take().unwrap();
        let eq_span = trace
            .spans
            .iter()
            .find(|s| s.target == "equations")
            .expect("transport derivation span recorded");
        assert_eq!(eq_span.name, "derive dot Eq T1-T6");
        assert_eq!(eq_span.attrs.len(), 7, "transport + six equations");
        let (_, cold) = eq_span
            .attrs
            .iter()
            .find(|(k, _)| *k == "eqT3.t_cold_ms")
            .expect("Eq T3 attribute");
        assert_eq!(cold, "170");
    }

    #[test]
    fn batch_matches_scalar_bit_for_bit() {
        // Awkward, non-round values so any op-reordering in the batched
        // path shows up as a bit difference.
        let fixtures = [
            synthetic(80.3, 20.7, 30.11, 10.13, 30.17, 90.19),
            synthetic(123.456, 7.89, 0.123, 45.6, 78.9, 12.3),
            synthetic(0.001, 0.002, 0.003, 0.004, 0.005, 0.006),
            synthetic(999.9, 88.8, 77.7, 66.6, 55.5, 44.4),
        ];
        let mut batch = DerivationBatch::with_capacity(2);
        // Two fills through the same batch proves clear() recycles fully.
        for chunk in fixtures.chunks(2) {
            batch.clear();
            for obs in chunk {
                batch.push(obs);
            }
            batch.derive();
            assert_eq!(batch.len(), chunk.len());
            for (i, obs) in chunk.iter().enumerate() {
                assert_eq!(
                    batch.t_doh_ms()[i].to_bits(),
                    derive_t_doh_ms(obs).to_bits(),
                    "Eq 7 row {i}"
                );
                assert_eq!(
                    batch.t_dohr_ms()[i].to_bits(),
                    derive_t_dohr_ms(obs).to_bits(),
                    "Eq 8 row {i}"
                );
            }
        }
        batch.clear();
        assert!(batch.is_empty());
    }

    #[test]
    fn derivation_degrades_gracefully_with_proxy_noise() {
        // Add 5ms of unaccounted forwarding overhead in phase 2: t_DoH is
        // overestimated by exactly that amount.
        let clean = synthetic(80.0, 20.0, 30.0, 10.0, 30.0, 90.0);
        let mut noisy = clean;
        noisy.t_d += SimDuration::from_millis_f64(5.0);
        let err = derive_t_doh_ms(&noisy) - derive_t_doh_ms(&clean);
        assert!((err - 5.0).abs() < 1e-9);
    }
}
