//! Web page-load workload (DESIGN.md §15).
//!
//! The paper's per-query timings answer "how much slower is one DoH
//! query"; this module answers the question users actually feel: how
//! much slower is a *page*. A synthetic page is a dependency DAG of
//! DNS resolutions — the root HTML names stylesheets, which name fonts,
//! which name CDN hosts — and page-load time (PLT) is the critical path
//! through that DAG, not the sum of its queries.
//!
//! Three mechanisms interact along that path, and each is modeled
//! explicitly rather than averaged away:
//!
//! 1. **Connection multiplexing.** Every resolution of one
//!    (client, provider, transport) page shares a single
//!    [`Connection`]: the cold visit pays bootstrap + full handshake
//!    once, then every query rides the established session. On loss,
//!    the transports diverge — a lost TCP segment (DoH/DoT) stalls
//!    *every* in-flight stream on the connection (head-of-line
//!    blocking), while QUIC (DoQ) re-transmits inside the affected
//!    stream and plain Do53 burns its per-datagram retry timer.
//! 2. **The stub cache.** A capacity-bounded [`DnsCache`] sits in the
//!    resolution path: duplicate hostnames inside one page hit
//!    intra-page, and warm revisits hit cross-page until TTLs expire. A
//!    periodic timer-wheel tick sweeps expired entries during the visit.
//! 3. **Dependency scheduling.** Ready nodes resolve concurrently
//!    through the simulator's timer wheel; a node becomes ready only
//!    when all its parents have resolved. PLT is therefore the last
//!    completion time minus the visit start — the DAG's critical path
//!    under whatever concurrency the dependency structure allows.
//!
//! # Determinism contract
//!
//! Page *shape* (node count, depths, duplicate names, TTLs) is drawn
//! from a per-country profile stream and a per-client model stream —
//! both forks of the campaign lineage, so the same client builds the
//! same page in any shard layout. Execution consumes only the
//! per-(client, transport, provider) fork handed to [`measure_page`]
//! plus the simulator's checkpointed jitter streams; event ties break
//! on insertion order, which is itself deterministic. The campaign
//! wraps the whole block in `with_rng_checkpoint`, so enabling the
//! workload never perturbs legacy or transports samples.

use dohperf_dns::cache::{CacheKey, DnsCache};
use dohperf_dns::name::DnsName;
use dohperf_dns::rdata::RData;
use dohperf_dns::record::ResourceRecord;
use dohperf_dns::types::RecordType;
use dohperf_netsim::connection::{Connection, DnsTransport, Warmth};
use dohperf_netsim::engine::Simulator;
use dohperf_netsim::event::EventId;
use dohperf_netsim::rng::SimRng;
use dohperf_netsim::time::{SimDuration, SimTime};
use dohperf_netsim::topology::NodeId;
use dohperf_providers::pops::PopDeployment;
use dohperf_providers::provider::ProviderKind;
use dohperf_proxy::exitnode::ExitNode;
use dohperf_telemetry::flight;
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Fewest resolutions a page can need (root + a handful of assets).
pub const MIN_PAGE_DOMAINS: usize = 4;
/// Most resolutions a page can need; keeps node indices in `u16` and
/// the per-page state small enough to reset without reallocating.
pub const MAX_PAGE_DOMAINS: usize = 32;
/// Stub-cache capacity. Deliberately below [`MAX_PAGE_DOMAINS`] so the
/// widest pages overflow it and the LRU policy is exercised on the
/// measurement path, not only in unit tests.
pub const PAGE_CACHE_CAPACITY: usize = 24;

/// Probability a non-root node reuses an already-drawn hostname (shared
/// CDN hosts), producing intra-page cache hits on the cold visit.
const DUPLICATE_NAME_P: f64 = 0.15;
/// Probability a node depends on a second parent (when one exists).
const TWO_PARENT_P: f64 = 0.4;
/// Parse delay between a parent resolving and its children being
/// discovered in the document.
const PARSE_GAP: SimDuration = SimDuration::from_millis(2);
/// Think time between visits: long enough for short TTLs to expire,
/// short enough that the connection survives its idle timeout.
const INTER_VISIT_GAP: SimDuration = SimDuration::from_millis(5_000);
/// Period of the expired-entry sweep while a visit is in flight.
const EVICT_TICK: SimDuration = SimDuration::from_millis(1_000);
/// TTLs assigned to unique names. The 2 s bucket expires inside the
/// inter-visit gap, so warm visits still pay for some re-resolutions.
const TTL_CHOICES: [u32; 4] = [2, 30, 60, 300];
/// Probability the exit node's resolver has the provider's bootstrap A
/// record cached (mirrors `proxy::lifecycle`).
const BOOTSTRAP_CACHE_HIT_P: f64 = 0.8;

/// Per-country page-shape distribution parameters, drawn once per
/// country from the campaign root stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageProfile {
    /// Mean node count for pages in this country.
    pub mean_domains: f64,
    /// Deepest dependency chain pages in this country may have.
    pub max_depth: u32,
}

impl PageProfile {
    /// Derive the profile for one country. Forks never advance their
    /// parent, so any range of the same country computes the same
    /// profile regardless of shard layout.
    pub fn for_country(root_rng: &SimRng, iso: &str) -> PageProfile {
        let mut rng = root_rng.fork_parts(&["page-profile-", iso]);
        PageProfile {
            mean_domains: rng.uniform(8.0, 24.0),
            max_depth: 2 + rng.index(3) as u32,
        }
    }
}

/// One client's synthetic page: a DAG of resolutions in CSR form.
///
/// Nodes are stored in non-decreasing depth order with node 0 (the root
/// document) at depth 0, and every edge points from a node to a parent
/// of *strictly smaller* depth — so the graph is acyclic by
/// construction and every parent index is smaller than its child's.
#[derive(Debug, Clone, PartialEq)]
pub struct PageModel {
    /// Per-node depth, non-decreasing, `depths[0] == 0`.
    pub depths: Vec<u32>,
    /// CSR offsets into `edges`: node `i`'s parents are
    /// `edges[edge_index[i]..edge_index[i + 1]]`.
    pub edge_index: Vec<u32>,
    /// Parent node indices, flattened.
    pub edges: Vec<u16>,
    /// Per-node hostname id in `0..unique_names` (duplicates share one).
    pub name_of: Vec<u16>,
    /// Per-unique-name TTL, seconds.
    pub ttl_of: Vec<u32>,
    /// Number of distinct hostnames.
    pub unique_names: usize,
}

impl PageModel {
    /// Draw one page from a country profile. Consumes only `rng`.
    pub fn generate(profile: &PageProfile, rng: &mut SimRng) -> PageModel {
        let n = (rng
            .normal(profile.mean_domains, profile.mean_domains / 4.0)
            .round() as i64)
            .clamp(MIN_PAGE_DOMAINS as i64, MAX_PAGE_DOMAINS as i64) as usize;

        let mut depths = Vec::with_capacity(n);
        depths.push(0u32);
        for _ in 1..n {
            depths.push(1 + rng.index(profile.max_depth as usize) as u32);
        }
        depths[1..].sort_unstable();

        let mut name_of = Vec::with_capacity(n);
        name_of.push(0u16);
        let mut unique_names = 1usize;
        for _ in 1..n {
            if rng.chance(DUPLICATE_NAME_P) {
                name_of.push(rng.index(unique_names) as u16);
            } else {
                name_of.push(unique_names as u16);
                unique_names += 1;
            }
        }
        let ttl_of = (0..unique_names)
            .map(|_| TTL_CHOICES[rng.index(TTL_CHOICES.len())])
            .collect();

        let mut edge_index = Vec::with_capacity(n + 1);
        let mut edges = Vec::new();
        edge_index.push(0u32);
        for i in 0..n {
            if i > 0 {
                // Depths are sorted, so the nodes of strictly smaller
                // depth are exactly the prefix before this depth's first
                // occurrence; the root guarantees it is non-empty.
                let eligible = depths[..i].partition_point(|&d| d < depths[i]);
                let first = rng.index(eligible) as u16;
                edges.push(first);
                if eligible > 1 && rng.chance(TWO_PARENT_P) {
                    let second = rng.index(eligible) as u16;
                    if second != first {
                        edges.push(second);
                    }
                }
            }
            edge_index.push(edges.len() as u32);
        }

        PageModel {
            depths,
            edge_index,
            edges,
            name_of,
            ttl_of,
            unique_names,
        }
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.depths.len()
    }

    /// Whether the page has no nodes (never true for generated pages).
    pub fn is_empty(&self) -> bool {
        self.depths.is_empty()
    }

    /// Longest dependency chain (root is depth 0).
    pub fn max_depth(&self) -> u32 {
        *self.depths.last().expect("pages have at least a root")
    }

    /// Node `i`'s parents.
    pub fn parents_of(&self, i: usize) -> &[u16] {
        &self.edges[self.edge_index[i] as usize..self.edge_index[i + 1] as usize]
    }
}

/// Outcome of one full page measurement: a cold visit plus one or more
/// warm revisits of the same page over the same connection and cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageOutcome {
    /// Critical-path PLT of the cold visit (empty cache, cold
    /// connection, bootstrap included), ms.
    pub plt_cold_ms: f64,
    /// Median critical-path PLT over the warm revisits, ms.
    pub plt_warm_ms: f64,
    /// Cache hits during the cold visit (intra-page duplicates).
    pub cold_cache_hits: u32,
    /// Cache hits summed over the warm revisits (cross-page reuse).
    pub warm_cache_hits: u32,
    /// Resolutions that actually went to the network, all visits.
    pub queries: u32,
}

/// Mutable per-page state shared by the scheduled events.
///
/// The event closures hold `Rc` clones; each event borrows the state
/// for its own duration only, and no event re-enters another, so the
/// `RefCell` discipline is trivially upheld.
struct PageRun {
    exit: ExitNode,
    pop: NodeId,
    auth: NodeId,
    provider: ProviderKind,
    transport: DnsTransport,
    extra_loss_p: f64,
    model: PageModel,
    /// Cache key per unique name (names are client-independent so the
    /// global label-intern arena stays bounded).
    keys: Vec<CacheKey>,
    rng: SimRng,
    cache: DnsCache,
    /// Connection generation of the current visit, for span attrs.
    generation: u32,
    // --- per-visit state, reset by `reset_visit` ---
    /// Unresolved parents per node; a node schedules when it hits 0.
    remaining: Vec<u32>,
    /// When each node's resolution started (for spans).
    started_at: Vec<SimTime>,
    /// Whether each node's resolution was a cache hit.
    was_hit: Vec<bool>,
    /// In-flight resolutions: (node, completion event, completion time).
    /// TCP loss stalls rewrite this list wholesale.
    in_flight: Vec<(u16, EventId, SimTime)>,
    /// Nodes resolved so far this visit.
    done: u32,
    /// Completion time of the latest resolution — PLT's right edge.
    last_done: SimTime,
    /// Visit in progress: the evict tick re-arms only while set.
    active: bool,
    // --- cumulative across visits ---
    cache_hits: u32,
    queries: u32,
    recording: bool,
}

impl PageRun {
    fn reset_visit(&mut self, start: SimTime) {
        let n = self.model.len();
        self.remaining.clear();
        for i in 0..n {
            self.remaining.push(self.model.parents_of(i).len() as u32);
        }
        self.started_at.clear();
        self.started_at.resize(n, start);
        self.was_hit.clear();
        self.was_hit.resize(n, false);
        self.in_flight.clear();
        self.done = 0;
        self.last_done = start;
        self.active = true;
    }
}

/// Whole seconds of simulated time — the cache's clock granularity.
fn cache_now(at: SimTime) -> u64 {
    at.as_nanos() / 1_000_000_000
}

/// A node's dependencies are satisfied: resolve its hostname. Cache
/// hits answer locally; misses cost a request leg + framing + optional
/// loss stall + recursion + provider processing, all multiplexed on the
/// page's shared connection. Schedules the completion event.
fn node_ready(sim: &mut Simulator, run: &Rc<RefCell<PageRun>>, node: u16, at: SimTime) {
    let mut s = run.borrow_mut();
    let s = &mut *s;
    s.started_at[node as usize] = at;
    let name_id = s.model.name_of[node as usize] as usize;
    let hit = s.cache.get(&s.keys[name_id], cache_now(at)).is_some();
    s.was_hit[node as usize] = hit;
    let mut stall_others = SimDuration::ZERO;
    let elapsed = if hit {
        s.cache_hits += 1;
        let _hot = dohperf_telemetry::alloc::hot_scope();
        // Local answer: stub processing only, no network.
        SimDuration::from_millis_f64(s.rng.lognormal_median(0.2, 0.2))
    } else {
        s.queries += 1;
        let transport = s.transport;
        let _hot = dohperf_telemetry::alloc::hot_scope();
        // Same cost model as `proxy::lifecycle::transport_query`, with
        // the loss asymmetry lifted to page granularity: TCP stalls
        // every in-flight sibling, QUIC and UDP stay stream-local.
        let mut leg = sim.rtt(s.exit.node, s.pop);
        let framing = s
            .exit
            .https_overhead(&mut s.rng)
            .mul_f64(transport.framing_factor());
        if s.rng.chance(s.extra_loss_p) {
            match transport {
                DnsTransport::Do53 => {
                    leg += dohperf_netsim::transport::UDP_RETRY_TIMEOUT;
                }
                DnsTransport::DoH | DnsTransport::DoT => {
                    let mut stall = SimDuration::ZERO;
                    for _ in 0..transport.loss_stall_rtts() {
                        stall += sim.rtt(s.exit.node, s.pop);
                    }
                    leg += stall;
                    stall_others = stall;
                }
                DnsTransport::DoQ => {
                    for _ in 0..transport.loss_stall_rtts() {
                        leg += sim.rtt(s.exit.node, s.pop);
                    }
                }
            }
        }
        // Page hostnames are synthetic and per-campaign, so the
        // provider's recursive cache never has them: full recursion.
        let recursion = sim.rtt(s.pop, s.auth);
        let processing = s.provider.processing_time(&mut s.rng)
            + s.provider.forwarding_penalty(s.exit.id, &mut s.rng);
        leg + framing + recursion + processing
    };
    if !hit {
        dohperf_telemetry::counter!("campaign.page_queries").inc();
    }
    if stall_others > SimDuration::ZERO {
        dohperf_telemetry::counter!("campaign.page_tcp_stalls").inc();
        // Head-of-line blocking: push every in-flight sibling's
        // completion out by the stall and re-arm their events.
        for slot in s.in_flight.iter_mut() {
            sim.cancel(slot.1);
            slot.2 += stall_others;
            let sibling = slot.0;
            let rc = run.clone();
            slot.1 = sim.schedule_at(slot.2, move |sim, t| node_complete(sim, &rc, sibling, t));
        }
    }
    let completes = at + elapsed;
    let rc = run.clone();
    let ev = sim.schedule_at(completes, move |sim, t| node_complete(sim, &rc, node, t));
    s.in_flight.push((node, ev, completes));
}

/// A node's resolution finished: cache the answer, emit its span, and
/// release any children whose parents are now all resolved.
fn node_complete(sim: &mut Simulator, run: &Rc<RefCell<PageRun>>, node: u16, at: SimTime) {
    let mut s = run.borrow_mut();
    let s = &mut *s;
    if let Some(pos) = s.in_flight.iter().position(|slot| slot.0 == node) {
        s.in_flight.swap_remove(pos);
    }
    let name_id = s.model.name_of[node as usize] as usize;
    if !s.was_hit[node as usize] {
        let ttl = s.model.ttl_of[name_id];
        let key = &s.keys[name_id];
        let answer = vec![ResourceRecord::new(
            key.name.clone(),
            ttl,
            RData::A(Ipv4Addr::new(198, 51, 100, name_id as u8 + 1)),
        )];
        s.cache.insert(key.clone(), answer, cache_now(at), ttl);
    }
    if s.recording {
        let span = flight::start_span(
            "pageload",
            format!("resolve n{node} r{name_id}"),
            s.started_at[node as usize].as_nanos(),
        );
        flight::attr(span, "depth", s.model.depths[node as usize].to_string());
        flight::attr(
            span,
            "cache",
            if s.was_hit[node as usize] {
                "hit"
            } else {
                "miss"
            },
        );
        flight::attr(span, "generation", s.generation.to_string());
        flight::end_span(span, at.as_nanos());
    }
    s.done += 1;
    if at > s.last_done {
        s.last_done = at;
    }
    if s.done == s.model.len() as u32 {
        s.active = false;
        return;
    }
    for child in (node as usize + 1)..s.model.len() {
        let parents = s.model.parents_of(child);
        if !parents.contains(&node) {
            continue;
        }
        s.remaining[child] -= 1;
        if s.remaining[child] == 0 {
            let rc = run.clone();
            let c = child as u16;
            sim.schedule_at(at + PARSE_GAP, move |sim, t| node_ready(sim, &rc, c, t));
        }
    }
}

/// Re-arming expired-entry sweep: runs every [`EVICT_TICK`] while the
/// visit is active, then lets the queue drain (the per-client epoch
/// asserts an empty queue, so nothing may keep re-arming forever).
fn schedule_evict_tick(sim: &mut Simulator, run: &Rc<RefCell<PageRun>>, at: SimTime) {
    let rc = run.clone();
    sim.schedule_at(at, move |sim, t| {
        let still_active = {
            let mut s = rc.borrow_mut();
            if s.active {
                s.cache.evict_expired(cache_now(t));
            }
            s.active
        };
        if still_active {
            schedule_evict_tick(sim, &rc, t + EVICT_TICK);
        }
    });
}

/// Measure one page over one (client, provider, transport) triple:
/// a cold visit (empty cache, cold connection) followed by
/// `visits - 1` warm revisits, every resolution multiplexed on one
/// shared [`Connection`].
///
/// `rng` must be a dedicated fork — the campaign derives one per
/// (client, transport, provider) so these draws never perturb the
/// legacy measurement lineage. The simulator clock is left wherever the
/// last visit ended; callers run inside a per-client epoch.
#[allow(clippy::too_many_arguments)]
pub fn measure_page(
    sim: &mut Simulator,
    exit: &ExitNode,
    provider: ProviderKind,
    deployment: &PopDeployment,
    pop_index: usize,
    auth: NodeId,
    transport: DnsTransport,
    extra_loss_p: f64,
    model: &PageModel,
    visits: u32,
    rng: &mut SimRng,
) -> PageOutcome {
    assert!(
        visits >= 2,
        "a page measurement needs a cold visit plus at least one revisit"
    );
    let pop = deployment.sites[pop_index].node;
    let recording = flight::active();
    let n = model.len();

    // Fixed hostnames r0..r31: bounded label-intern footprint, and the
    // per-pair cache is fresh so clients cannot observe each other.
    let keys: Vec<CacheKey> = (0..model.unique_names)
        .map(|i| CacheKey {
            name: DnsName::parse(&format!("r{i}.page.example")).expect("static page names parse"),
            rtype: RecordType::A,
        })
        .collect();

    let mut conn = Connection::new(transport);
    let run = Rc::new(RefCell::new(PageRun {
        exit: exit.clone(),
        pop,
        auth,
        provider,
        transport,
        extra_loss_p,
        model: model.clone(),
        keys,
        rng: rng.fork("page-run"),
        cache: DnsCache::with_capacity(PAGE_CACHE_CAPACITY),
        generation: 0,
        remaining: Vec::with_capacity(n),
        started_at: Vec::with_capacity(n),
        was_hit: Vec::with_capacity(n),
        in_flight: Vec::with_capacity(n),
        done: 0,
        last_done: sim.now(),
        active: false,
        cache_hits: 0,
        queries: 0,
        recording,
    }));

    let page_span = if recording {
        flight::start_span(
            "pageload",
            format!("page {} {}", transport.name(), provider.hostname()),
            sim.now().as_nanos(),
        )
    } else {
        flight::SpanToken::NOOP
    };

    let mut plt_cold_ms = 0.0;
    let mut warm_plts: Vec<f64> = Vec::with_capacity(visits as usize - 1);
    let mut cold_hits = 0u32;

    for visit in 0..visits {
        if visit > 0 {
            sim.advance(INTER_VISIT_GAP);
        }
        dohperf_telemetry::counter!("campaign.page_visits").inc();
        let visit_start = sim.now();
        let visit_span = if recording {
            flight::start_span(
                "pageload",
                format!(
                    "visit {visit} ({})",
                    if visit == 0 { "cold" } else { "warm" }
                ),
                visit_start.as_nanos(),
            )
        } else {
            flight::SpanToken::NOOP
        };
        let hits_before;
        {
            let mut s = run.borrow_mut();
            let s = &mut *s;
            hits_before = s.cache_hits;
            s.reset_visit(visit_start);
            // Sweep entries that expired during the think-time gap so
            // the eviction counter sees them deterministically.
            s.cache.evict_expired(cache_now(visit_start));
            // Cold visits bootstrap the provider hostname over Do53
            // (encrypted transports only; Do53 targets the resolver
            // address directly), then pay the full handshake. Warm
            // visits re-acquire inside the keep-alive window for free.
            if visit == 0 && transport.is_encrypted() {
                let bootstrap = s.exit.do53_bootstrap(
                    sim,
                    pop,
                    provider.hostname(),
                    BOOTSTRAP_CACHE_HIT_P,
                    &mut s.rng,
                );
                sim.advance(bootstrap);
            }
            let acq = conn.acquire(sim.now());
            s.generation = acq.generation;
            let mut handshake = SimDuration::ZERO;
            for _ in 0..transport.handshake_rtts(acq.warmth) {
                handshake += sim.rtt(s.exit.node, pop);
            }
            if transport.is_encrypted() && acq.warmth == Warmth::Cold {
                handshake += s.exit.handshake_crypto_overhead(&mut s.rng);
            }
            sim.advance(handshake);
            s.last_done = sim.now();
            if recording {
                flight::attr(visit_span, "warmth", acq.warmth.name());
                flight::attr(visit_span, "generation", acq.generation.to_string());
            }
        }
        let root_at = sim.now();
        let rc = run.clone();
        sim.schedule_at(root_at, move |sim, t| node_ready(sim, &rc, 0, t));
        schedule_evict_tick(sim, &run, root_at + EVICT_TICK);
        sim.run_to_completion();

        let (plt_ms, visit_hits) = {
            let s = run.borrow();
            debug_assert_eq!(s.done, n as u32, "every page node must resolve");
            (
                s.last_done.saturating_since(visit_start).as_millis_f64(),
                s.cache_hits - hits_before,
            )
        };
        if visit == 0 {
            plt_cold_ms = plt_ms;
            cold_hits = visit_hits;
        } else {
            warm_plts.push(plt_ms);
        }
        if recording {
            flight::attr(visit_span, "plt_ms", format!("{plt_ms}"));
            flight::attr(visit_span, "cache_hits", visit_hits.to_string());
            flight::end_span(visit_span, sim.now().as_nanos());
        }
    }
    if recording {
        flight::end_span(page_span, sim.now().as_nanos());
    }

    let s = run.borrow();
    PageOutcome {
        plt_cold_ms,
        plt_warm_ms: median(&mut warm_plts),
        cold_cache_hits: cold_hits,
        warm_cache_hits: s.cache_hits - cold_hits,
        queries: s.queries,
    }
}

/// Median of a non-empty slice (lower middle for even lengths — with
/// the default single warm revisit this is the identity).
fn median(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("PLTs are finite"));
    xs[(xs.len() - 1) / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model_for(seed: u64) -> (PageProfile, PageModel) {
        let root = SimRng::new(seed).fork("campaign");
        let profile = PageProfile::for_country(&root, "BR");
        let mut rng = root.fork_indexed("client", 7).fork("page-model");
        let model = PageModel::generate(&profile, &mut rng);
        (profile, model)
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, a) = model_for(42);
        let (_, b) = model_for(42);
        assert_eq!(a, b);
        let (_, c) = model_for(43);
        assert_ne!(a, c, "different seeds should draw different pages");
    }

    #[test]
    fn profile_is_a_pure_function_of_seed_and_country() {
        let root = SimRng::new(9).fork("campaign");
        let a = PageProfile::for_country(&root, "US");
        let b = PageProfile::for_country(&root, "US");
        assert_eq!(a, b);
        assert!((8.0..=24.0).contains(&a.mean_domains));
        assert!((2..=4).contains(&a.max_depth));
    }

    fn assert_invariants(profile: &PageProfile, model: &PageModel) {
        let n = model.len();
        assert!((MIN_PAGE_DOMAINS..=MAX_PAGE_DOMAINS).contains(&n));
        assert_eq!(model.depths[0], 0, "node 0 is the root document");
        assert!(model.max_depth() <= profile.max_depth);
        assert!(model.depths.windows(2).all(|w| w[0] <= w[1]));
        assert!(model.parents_of(0).is_empty(), "the root has no parents");
        assert!(model.unique_names <= n);
        assert_eq!(model.ttl_of.len(), model.unique_names);
        assert!(model
            .name_of
            .iter()
            .all(|&id| (id as usize) < model.unique_names));
        for i in 1..n {
            let parents = model.parents_of(i);
            assert!(!parents.is_empty(), "non-root node {i} must have a parent");
            assert!(parents.len() <= 2);
            for &p in parents {
                // Strictly-smaller parent depth makes the DAG acyclic by
                // construction; smaller index proves topological order.
                assert!((p as usize) < i);
                assert!(model.depths[p as usize] < model.depths[i]);
            }
        }
    }

    proptest! {
        #[test]
        fn generated_pages_are_acyclic_and_in_bounds(seed in any::<u64>(), client in 0u64..512) {
            let root = SimRng::new(seed).fork("campaign");
            let profile = PageProfile::for_country(&root, "DE");
            let mut rng = root.fork_indexed("client", client).fork("page-model");
            let model = PageModel::generate(&profile, &mut rng);
            assert_invariants(&profile, &model);
        }
    }

    #[test]
    fn duplicate_names_appear_at_scale() {
        // Over many clients some pages must reuse hostnames — that is
        // what produces intra-page (cold-visit) cache hits.
        let root = SimRng::new(2021).fork("campaign");
        let profile = PageProfile::for_country(&root, "JP");
        let mut dupes = 0;
        for client in 0..64 {
            let mut rng = root.fork_indexed("client", client).fork("page-model");
            let model = PageModel::generate(&profile, &mut rng);
            if model.unique_names < model.len() {
                dupes += 1;
            }
        }
        assert!(dupes > 10, "only {dupes}/64 pages had duplicate names");
    }

    #[test]
    fn median_takes_the_lower_middle() {
        assert_eq!(median(&mut [3.0]), 3.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&mut [4.0, 1.0]), 1.0);
    }
}
