//! The fixed experimental infrastructure of Figure 1.
//!
//! Everything the authors controlled: a measurement client, a web server
//! and the authoritative name server for the measurement zone `a.com`
//! (all hosted in the US), plus the deployed BrightData Super Proxy fleet
//! and the four DoH provider PoP fleets.

use dohperf_netsim::engine::Simulator;
use dohperf_netsim::topology::{GeoPoint, NodeId, NodeRole, NodeSpec};
use dohperf_providers::pops::PopDeployment;
use dohperf_providers::provider::{ProviderKind, ALL_PROVIDERS};
use dohperf_proxy::network::BrightDataNetwork;
use dohperf_world::countries::country;

/// The measurement zone the authors control.
pub const MEASUREMENT_ZONE: &str = "a.com";

/// The assembled testbed.
pub struct Testbed {
    /// The simulator everything lives in.
    pub sim: Simulator,
    /// BrightData Super Proxy fleet.
    pub network: BrightDataNetwork,
    /// Provider PoP deployments, in [`ALL_PROVIDERS`] order.
    pub deployments: Vec<PopDeployment>,
    /// The authors' measurement client (Illinois).
    pub client: NodeId,
    /// The authors' web server (answers the Do53-triggering GETs).
    pub web_server: NodeId,
    /// The authoritative name server for `a.com`.
    pub auth_ns: NodeId,
    /// Node count after assembly — the first id available to per-client
    /// nodes. Campaign shards anchor client node ids at
    /// `base_nodes + 2 * in_country_offset` (each client adds exactly two
    /// nodes: exit host + resolver), so node ids are a pure function of
    /// the client's offset, not of which shard measured it.
    pub base_nodes: usize,
}

impl Testbed {
    /// Assemble the full testbed on a fresh simulator.
    pub fn new(seed: u64) -> Testbed {
        let mut sim = Simulator::new(seed);
        let network = BrightDataNetwork::deploy(&mut sim);
        let us = country("US").expect("US in table");
        let dc = us.datacenter_profile();
        // The authors ran from UIUC; the servers sit in a US data centre.
        let client = sim.add_node(
            NodeSpec::new(
                "measurement-client",
                GeoPoint::new(40.1, -88.2),
                NodeRole::Server,
            )
            .with_infra(dc)
            .with_country(*b"US"),
        );
        let web_server = sim.add_node(
            NodeSpec::new("web-server", GeoPoint::new(39.0, -77.5), NodeRole::Server)
                .with_infra(dc)
                .with_country(*b"US"),
        );
        let auth_ns = sim.add_node(
            NodeSpec::new(
                "auth-ns-a.com",
                GeoPoint::new(39.0, -77.5),
                NodeRole::AuthoritativeNs,
            )
            .with_infra(dc)
            .with_country(*b"US"),
        );
        let deployments = ALL_PROVIDERS
            .iter()
            .map(|&kind| PopDeployment::deploy(kind, &mut sim))
            .collect();
        let base_nodes = sim.next_node_index();
        Testbed {
            sim,
            network,
            deployments,
            client,
            web_server,
            auth_ns,
            base_nodes,
        }
    }

    /// The deployment for a provider.
    pub fn deployment(&self, kind: ProviderKind) -> &PopDeployment {
        let idx = ALL_PROVIDERS
            .iter()
            .position(|&k| k == kind)
            .expect("known provider");
        &self.deployments[idx]
    }

    /// Mint a fresh UUID-style subdomain of the measurement zone, one per
    /// request, defeating caches (§3.1).
    pub fn fresh_subdomain(&mut self) -> String {
        let mut buf = [0u8; SUBDOMAIN_BUF_LEN];
        format_subdomain(self.fresh_subdomain_id(), &mut buf).to_string()
    }

    /// Draw the id behind [`Self::fresh_subdomain`] — one RNG advance,
    /// exactly as the formatting path consumes — for callers that format
    /// the qname into their own stack buffer via [`format_subdomain`].
    pub fn fresh_subdomain_id(&mut self) -> u64 {
        self.sim.rng_mut().next_u64()
    }
}

/// Bytes needed to format a fresh subdomain: 16 hex digits, a dot, and
/// the measurement zone.
pub const SUBDOMAIN_BUF_LEN: usize = 17 + MEASUREMENT_ZONE.len();

/// Format `"{id:016x}.a.com"` into `buf` without allocating; returns the
/// string slice over the buffer.
pub fn format_subdomain(id: u64, buf: &mut [u8; SUBDOMAIN_BUF_LEN]) -> &str {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    for i in 0..16 {
        buf[15 - i] = HEX[((id >> (4 * i)) & 0xF) as usize];
    }
    buf[16] = b'.';
    buf[17..].copy_from_slice(MEASUREMENT_ZONE.as_bytes());
    std::str::from_utf8(buf).expect("hex digits and zone are ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_assembles_every_component() {
        let tb = Testbed::new(1);
        assert_eq!(tb.network.super_proxies.len(), 11);
        assert_eq!(tb.deployments.len(), 4);
        assert_eq!(tb.deployment(ProviderKind::Cloudflare).len(), 146);
        assert_eq!(tb.deployment(ProviderKind::Google).len(), 26);
        let topo = tb.sim.topology();
        assert_eq!(topo.node(tb.auth_ns).spec.role, NodeRole::AuthoritativeNs);
        assert_eq!(topo.node(tb.web_server).spec.role, NodeRole::Server);
    }

    #[test]
    fn fresh_subdomains_are_unique_and_in_zone() {
        let mut tb = Testbed::new(2);
        let a = tb.fresh_subdomain();
        let b = tb.fresh_subdomain();
        assert_ne!(a, b);
        assert!(a.ends_with(".a.com"));
    }

    #[test]
    fn format_subdomain_matches_format_macro() {
        for id in [0u64, 1, 0xdead_beef, u64::MAX] {
            let mut buf = [0u8; SUBDOMAIN_BUF_LEN];
            assert_eq!(
                format_subdomain(id, &mut buf),
                format!("{id:016x}.{MEASUREMENT_ZONE}")
            );
        }
    }

    #[test]
    fn same_seed_same_testbed() {
        let a = Testbed::new(3);
        let b = Testbed::new(3);
        assert_eq!(a.sim.topology().len(), b.sim.topology().len());
    }
}
