//! §4 ground-truth validation.
//!
//! Before trusting the Equation 7/8 derivation at scale, the paper runs it
//! against exit nodes the authors *do* control:
//!
//! * **Table 1** — six EC2 machines (Ireland, Brazil, Sweden, Italy,
//!   India, USA) enrolled as exit nodes; derived DoH/DoHR medians agree
//!   with directly measured ground truth within ~10ms.
//! * **Table 2** — the same for Do53 header values in the four countries
//!   where the header is valid (USA and India are Super Proxy countries).
//! * **§4.3** — packet captures show exit nodes resolve with the
//!   OS-configured resolver.
//! * **§4.4** — BrightData and RIPE Atlas Do53 medians agree across ten
//!   overlap countries (paper: mean diff 7.6ms, sd 5.2ms).
//!
//! In the simulation, "ground truth" is the hidden `truth_*` fields of
//! the observations — quantities the derivation never reads.

use crate::equations::{derive_t_doh_ms, derive_t_dohr_ms};
use crate::testbed::Testbed;
use dohperf_netsim::rng::SimRng;
use dohperf_providers::provider::ProviderKind;
use dohperf_proxy::atlas::AtlasNetwork;
use dohperf_proxy::exitnode::ExitNode;
use dohperf_world::countries::country;
use dohperf_world::geoloc::GeolocationService;
use serde::Serialize;

/// The six ground-truth countries of Table 1.
pub const TABLE1_COUNTRIES: [&str; 6] = ["IE", "BR", "SE", "IT", "IN", "US"];
/// The four Do53-valid ground-truth countries of Table 2.
pub const TABLE2_COUNTRIES: [&str; 4] = ["IE", "BR", "SE", "IT"];
/// The §4.4 overlap countries (paper footnote 3 lists 13; ten are used).
pub const OVERLAP_COUNTRIES: [&str; 10] =
    ["BE", "ZA", "SE", "IT", "IR", "GR", "CH", "ES", "NO", "DK"];

/// One country row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct DohValidationRow {
    /// ISO code.
    pub country: &'static str,
    /// Median derived t_DoH (ms).
    pub derived_doh_ms: f64,
    /// Median ground-truth t_DoH (ms).
    pub truth_doh_ms: f64,
    /// Median derived t_DoHR (ms).
    pub derived_dohr_ms: f64,
    /// Median ground-truth t_DoHR (ms).
    pub truth_dohr_ms: f64,
}

impl DohValidationRow {
    /// |derived − truth| for DoH.
    pub fn doh_error_ms(&self) -> f64 {
        (self.derived_doh_ms - self.truth_doh_ms).abs()
    }

    /// |derived − truth| for DoHR.
    pub fn dohr_error_ms(&self) -> f64 {
        (self.derived_dohr_ms - self.truth_dohr_ms).abs()
    }
}

/// One country row of Table 2.
#[derive(Debug, Clone, Serialize)]
pub struct Do53ValidationRow {
    /// ISO code.
    pub country: &'static str,
    /// Median header-reported Do53 (ms).
    pub derived_ms: f64,
    /// Median ground-truth Do53 at the exit (ms).
    pub truth_ms: f64,
}

impl Do53ValidationRow {
    /// |derived − truth|.
    pub fn error_ms(&self) -> f64 {
        (self.derived_ms - self.truth_ms).abs()
    }
}

/// Outcome of the §4.4 platform-consistency experiment.
#[derive(Debug, Clone, Serialize)]
pub struct PlatformConsistency {
    /// Per-country |median difference| between BrightData and Atlas (ms).
    pub per_country_diff_ms: Vec<(&'static str, f64)>,
    /// Mean of the absolute differences.
    pub mean_diff_ms: f64,
    /// Standard deviation of the absolute differences.
    pub sd_diff_ms: f64,
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Create a controlled EC2-style exit node, as the paper did for §4.1
/// and §4.2 (six EC2 machines enrolled into the BrightData network).
fn controlled_exit(tb: &mut Testbed, iso: &str, id: u64) -> ExitNode {
    let c = country(iso).expect("validation country in table");
    let mut geoloc = GeolocationService::new(SimRng::new(id ^ 0x5a5a), 0.0, vec![c.iso]);
    let mut rng = SimRng::new(id);
    ExitNode::create_datacenter(&mut tb.sim, &mut geoloc, c, 0, c.centroid(), id, &mut rng)
}

/// Create a *residential* exit node (used by the §4.4 platform
/// comparison, which contrasts real exits with Atlas probes).
fn residential_exit(tb: &mut Testbed, iso: &str, id: u64) -> ExitNode {
    let c = country(iso).expect("validation country in table");
    let mut geoloc = GeolocationService::new(SimRng::new(id ^ 0xa5a5), 0.0, vec![c.iso]);
    let mut rng = SimRng::new(id);
    ExitNode::create(&mut tb.sim, &mut geoloc, c, 0, c.centroid(), id, &mut rng)
}

/// Run the Table 1 experiment: `runs` DoH measurements per country
/// against Cloudflare (as in the paper), reporting derived vs truth
/// medians.
pub fn run_table1(seed: u64, runs: u32) -> Vec<DohValidationRow> {
    let mut tb = Testbed::new(seed);
    let mut rows = Vec::new();
    for (i, iso) in TABLE1_COUNTRIES.iter().enumerate() {
        let exit = controlled_exit(&mut tb, iso, 1000 + i as u64);
        let deployment = tb.deployment(ProviderKind::Cloudflare);
        let pop_index = deployment.nearest_index(&exit.position);
        let mut derived_doh = Vec::new();
        let mut truth_doh = Vec::new();
        let mut derived_dohr = Vec::new();
        let mut truth_dohr = Vec::new();
        let mut rng = SimRng::new(seed).fork_indexed("t1", i as u64);
        for _ in 0..runs {
            let obs = tb.network.doh_measurement(
                &mut tb.sim,
                tb.client,
                &exit,
                ProviderKind::Cloudflare,
                &tb.deployments[0], // Cloudflare is ALL_PROVIDERS[0]
                pop_index,
                tb.auth_ns,
                &mut rng,
            );
            derived_doh.push(derive_t_doh_ms(&obs));
            truth_doh.push(obs.truth_t_doh.as_millis_f64());
            derived_dohr.push(derive_t_dohr_ms(&obs));
            truth_dohr.push(obs.truth_t_dohr.as_millis_f64());
        }
        rows.push(DohValidationRow {
            country: country(iso).unwrap().iso,
            derived_doh_ms: median(&mut derived_doh),
            truth_doh_ms: median(&mut truth_doh),
            derived_dohr_ms: median(&mut derived_dohr),
            truth_dohr_ms: median(&mut truth_dohr),
        });
    }
    rows
}

/// Run the Table 2 experiment: `runs` Do53 measurements per country,
/// comparing the header value against the exit node's true time.
pub fn run_table2(seed: u64, runs: u32) -> Vec<Do53ValidationRow> {
    let mut tb = Testbed::new(seed);
    let mut rows = Vec::new();
    for (i, iso) in TABLE2_COUNTRIES.iter().enumerate() {
        let exit = controlled_exit(&mut tb, iso, 2000 + i as u64);
        let mut derived = Vec::new();
        let mut truth = Vec::new();
        let mut rng = SimRng::new(seed).fork_indexed("t2", i as u64);
        for _ in 0..runs {
            let qname = tb.fresh_subdomain();
            let obs = tb.network.do53_measurement(
                &mut tb.sim,
                tb.client,
                &exit,
                tb.web_server,
                tb.auth_ns,
                &qname,
                &mut rng,
            );
            assert!(
                !obs.resolved_at_super_proxy,
                "Table 2 countries must not be Super Proxy countries"
            );
            derived.push(obs.tun.dns.as_millis_f64());
            truth.push(obs.truth_t_do53.as_millis_f64());
        }
        rows.push(Do53ValidationRow {
            country: country(iso).unwrap().iso,
            derived_ms: median(&mut derived),
            truth_ms: median(&mut truth),
        });
    }
    rows
}

/// §4.3: verify via packet traces that an exit node's first DNS packet
/// goes to its OS-configured resolver. Returns true when every observed
/// resolution used the default resolver.
pub fn run_resolver_confirmation(seed: u64, resolutions: u32) -> bool {
    let mut tb = Testbed::new(seed);
    let exit = controlled_exit(&mut tb, "BR", 3000);
    tb.sim.set_tracing(true);
    let mut rng = SimRng::new(seed).fork("sec43");
    for _ in 0..resolutions {
        let qname = tb.fresh_subdomain();
        tb.network.do53_measurement(
            &mut tb.sim,
            tb.client,
            &exit,
            tb.web_server,
            tb.auth_ns,
            &qname,
            &mut rng,
        );
    }
    // Every dns/udp packet originated by the exit host must target its
    // configured resolver.
    let all_via_default = tb
        .sim
        .trace()
        .by_proto("dns/udp")
        .filter(|r| r.src == exit.node)
        .all(|r| r.dst == exit.resolver);
    all_via_default
}

/// §4.4: compare BrightData and Atlas Do53 medians in the overlap
/// countries, `runs` measurements per platform per country.
pub fn run_platform_consistency(seed: u64, runs: u32) -> PlatformConsistency {
    let mut tb = Testbed::new(seed);
    let mut atlas = AtlasNetwork::new();
    let mut per_country = Vec::new();
    let mut rng = SimRng::new(seed).fork("sec44");
    for (i, iso) in OVERLAP_COUNTRIES.iter().enumerate() {
        let c = country(iso).unwrap();
        // The Super Proxy picks a random exit per request (§3.1); model
        // that by rotating over a pool of residential exits, so both
        // platforms estimate the same country-level median.
        let exits: Vec<ExitNode> = (0..24)
            .map(|e| residential_exit(&mut tb, iso, 4000 + (i as u64) * 64 + e))
            .collect();
        let probes = atlas.deploy_probes(&mut tb.sim, c, 24, &mut rng);
        let mut bright = Vec::new();
        let mut ripe = Vec::new();
        for r in 0..runs {
            let qname = tb.fresh_subdomain();
            let obs = tb.network.do53_measurement(
                &mut tb.sim,
                tb.client,
                &exits[(r as usize) % exits.len()],
                tb.web_server,
                tb.auth_ns,
                &qname,
                &mut rng,
            );
            bright.push(obs.tun.dns.as_millis_f64());
            let d = atlas.measure_do53(
                &mut tb.sim,
                probes[(r as usize) % probes.len()],
                tb.auth_ns,
                &mut rng,
            );
            ripe.push(d.as_millis_f64());
        }
        per_country.push((c.iso, (median(&mut bright) - median(&mut ripe)).abs()));
    }
    let diffs: Vec<f64> = per_country.iter().map(|(_, d)| *d).collect();
    let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
    let var = diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (diffs.len() - 1) as f64;
    PlatformConsistency {
        per_country_diff_ms: per_country,
        mean_diff_ms: mean,
        sd_diff_ms: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_errors_within_paper_bounds() {
        // Paper: diffs within ~8ms DoH, ~10ms DoHR at 10 runs/country.
        let rows = run_table1(11, 10);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(
                row.doh_error_ms() < 15.0,
                "{}: DoH error {:.1}ms",
                row.country,
                row.doh_error_ms()
            );
            assert!(
                row.dohr_error_ms() < 15.0,
                "{}: DoHR error {:.1}ms",
                row.country,
                row.dohr_error_ms()
            );
        }
    }

    #[test]
    fn table1_dohr_faster_than_doh() {
        let rows = run_table1(12, 10);
        for row in &rows {
            assert!(row.derived_dohr_ms < row.derived_doh_ms, "{}", row.country);
        }
    }

    #[test]
    fn table2_errors_within_paper_bounds() {
        // Paper: Do53 header matches ground truth within 2ms. Our header
        // IS the exit measurement outside SP countries, so the error is
        // exactly zero.
        let rows = run_table2(13, 10);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(
                row.error_ms() < 2.0,
                "{}: {:.2}ms",
                row.country,
                row.error_ms()
            );
        }
    }

    #[test]
    fn resolver_confirmation_holds() {
        assert!(run_resolver_confirmation(14, 10));
    }

    #[test]
    fn platform_consistency_within_paper_bounds() {
        // Paper: mean 7.6ms, sd 5.2ms across overlap countries. Allow a
        // loose band — the claim is that platforms agree to ~10ms scale.
        let result = run_platform_consistency(15, 60);
        assert_eq!(result.per_country_diff_ms.len(), 10);
        assert!(
            result.mean_diff_ms < 25.0,
            "mean diff {:.1}ms",
            result.mean_diff_ms
        );
    }
}
