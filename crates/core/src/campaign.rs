//! The full measurement campaign (§3.1, §5.1).
//!
//! For every country in the population model, the campaign requests exit
//! nodes from the BrightData network and, per client, performs five
//! requests per run: one DoH measurement against each of the four public
//! providers plus one Do53 measurement against the client's default
//! resolver, with two runs per client (§5.1). Fresh UUID subdomains
//! defeat caching throughout. Post-processing applies the Maxmind
//! mismatch discard and the RIPE Atlas remedy.
//!
//! # Determinism contract
//!
//! `seed -> Dataset` is a pure function. The campaign is sharded at
//! sub-country granularity: each work unit is a contiguous client-ID
//! *range* of one country (`[start, end)` in-country offsets), computed
//! by prefix-summing the per-country client counts and slicing each
//! country every [`CampaignConfig::shard_size`] clients. Every client is
//! simulated inside its own *epoch* — the simulator clock rewinds to
//! zero and the jitter/engine RNG streams are re-seeded from a fork keyed
//! by the globally stable client ID — and every per-client node id is
//! anchored at `base_nodes + 2 * offset`, so a client's measurement is a
//! pure function of `(seed, country, client_id)` no matter which range,
//! worker, or split boundary it lands behind. Workers own contiguous
//! blocks of ranges in work-stealing deques (idle workers drain the tail
//! of large countries), and range results merge back in canonical order,
//! so the resulting [`Dataset`] is byte-identical for any
//! [`CampaignConfig::threads`] *and* any [`CampaignConfig::shard_size`]
//! value — both are throughput knobs, never output knobs.

use crate::equations::{
    derive_transport_cold_ms, derive_transport_handshake_ms, derive_transport_resumed_ms,
    derive_transport_warm_ms, record_derivation, record_transport_derivation, DerivationBatch,
};
use crate::pageload;
use crate::records::{
    ClientRecord, Dataset, Do53Source, DohSample, PageSample, TransportSample, WindowSample,
};
use crate::store_io;
use crate::testbed::{format_subdomain, Testbed, SUBDOMAIN_BUF_LEN};
use crossbeam::deque;
use dohperf_netsim::connection::DnsTransport;
use dohperf_netsim::rng::SimRng;
use dohperf_providers::anycast::AnycastPolicy;
use dohperf_providers::provider::ALL_PROVIDERS;
use dohperf_proxy::atlas::AtlasNetwork;
use dohperf_proxy::exitnode::ExitNode;
use dohperf_proxy::network::MeasurementOptions;
use dohperf_proxy::superproxy::SuperProxy;
use dohperf_store::{
    ChunkWriter, Manifest, WriterStats, DEFAULT_CHUNK_BUDGET, MANIFEST_FILE, RECORDS_FILE,
};
use dohperf_telemetry::flight::{self, QueryTrace};
use dohperf_telemetry::phases;
use dohperf_world::countries::Country;
use dohperf_world::geoloc::GeolocationService;
use dohperf_world::population::PopulationModel;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::time::Instant;

/// Which transports the campaign measures through the
/// connection-lifecycle model, as a bitset over [`DnsTransport::ALL`].
///
/// The legacy DoH/Do53 measurements always run; this set *adds* the
/// per-(transport, provider) cold/warm/resumed lifecycle samples
/// (DESIGN.md §13). The default is the empty set, which keeps legacy
/// campaigns byte-identical — no extra RNG forks are taken, no extra
/// simulation time elapses, and [`ClientRecord::transports`] stays
/// empty.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolSet(u8);

impl ProtocolSet {
    /// The legacy-only campaign: no lifecycle measurements.
    pub const EMPTY: ProtocolSet = ProtocolSet(0);

    fn bit(t: DnsTransport) -> u8 {
        1 << (t as u8)
    }

    /// All four transports (`do53,doh,dot,doq`).
    pub fn all() -> ProtocolSet {
        DnsTransport::ALL
            .iter()
            .fold(ProtocolSet::EMPTY, |set, &t| set.with(t))
    }

    /// This set plus one transport.
    #[must_use]
    pub fn with(self, t: DnsTransport) -> ProtocolSet {
        ProtocolSet(self.0 | Self::bit(t))
    }

    /// Whether the set includes `t`.
    pub fn contains(self, t: DnsTransport) -> bool {
        self.0 & Self::bit(t) != 0
    }

    /// Whether no lifecycle measurements are requested (the legacy
    /// default).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of transports in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterate the members in canonical [`DnsTransport::ALL`] order —
    /// the measurement (and therefore record) order.
    pub fn iter(self) -> impl Iterator<Item = DnsTransport> {
        DnsTransport::ALL
            .into_iter()
            .filter(move |&t| self.contains(t))
    }

    /// Parse a comma-separated protocol list (`"do53,doh,dot,doq"`).
    /// Unknown names are an error carrying the accepted list, so CLI
    /// typos fail loudly instead of silently measuring nothing.
    pub fn parse_list(s: &str) -> Result<ProtocolSet, String> {
        let mut set = ProtocolSet::EMPTY;
        for token in s.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            match DnsTransport::parse(token) {
                Some(t) => set = set.with(t),
                None => {
                    return Err(format!(
                        "unknown protocol {token:?} (accepted: do53, doh, dot, doq)"
                    ))
                }
            }
        }
        Ok(set)
    }
}

/// Default clients per work unit when [`CampaignConfig::shard_size`] is 0.
///
/// Small enough that the largest countries split into dozens of
/// stealable ranges (the US alone holds thousands of clients at scale
/// 1.0), large enough that per-range setup (testbed assembly, geoloc
/// service) stays well under a percent of the range's simulation work.
pub const DEFAULT_SHARD_SIZE: usize = 256;

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Master seed; everything descends from it.
    pub seed: u64,
    /// Fraction of the sampled population to actually measure, in
    /// (0, 1]. `1.0` reproduces the paper's 22k-client scale; smaller
    /// values give fast CI runs with the same per-country coverage floor.
    pub scale: f64,
    /// Measurement runs per client (paper: 2).
    pub runs_per_client: u32,
    /// Geolocation mislabeling rate (paper observed 0.88% discards).
    pub geoloc_error_rate: f64,
    /// Atlas probes per remedy country.
    pub atlas_probes_per_country: usize,
    /// Atlas Do53 samples per remedy country.
    pub atlas_samples_per_country: usize,
    /// Measurement-level ablation knobs (TLS version, cache hits).
    pub measurement: MeasurementOptions,
    /// Ablation: replace every provider's anycast policy with perfect
    /// nearest-PoP routing, isolating how much of the DoH slowdown is
    /// routing inefficiency (§7's "providers should ensure clients take
    /// full advantage of nearby PoPs").
    pub perfect_anycast: bool,
    /// Worker threads for the campaign (0 = available parallelism).
    /// Any value yields a byte-identical [`Dataset`]; see the module-level
    /// determinism contract.
    pub threads: usize,
    /// Maximum clients per work unit (0 = [`DEFAULT_SHARD_SIZE`]).
    /// Countries larger than this split into multiple client-ID ranges
    /// that idle workers can steal. Like `threads`, any value yields a
    /// byte-identical [`Dataset`]; see the module-level determinism
    /// contract.
    pub shard_size: usize,
    /// Extra transports measured through the connection-lifecycle model
    /// (empty = legacy DoH/Do53 only; see [`ProtocolSet`]).
    pub protocols: ProtocolSet,
    /// Page visits per (client, transport, provider) triple for the
    /// page-load workload (DESIGN.md §15): one cold visit plus
    /// `pages_per_client - 1` warm revisits. `0` disables the workload
    /// (the legacy default); any enabled value must be at least 2 so
    /// every page has both a cold and a warm PLT.
    pub pages_per_client: u32,
    /// Simulated-time window width in nanoseconds for the windowed
    /// observability series (DESIGN.md §16). `0` disables windowing (the
    /// legacy default): no window samples, no `window.*` metrics, and
    /// byte-identical legacy outputs. When enabled, each client draws a
    /// campaign-time slot from a fresh fork of its own RNG stream (forks
    /// never advance the parent, so windowing never perturbs any
    /// measured sample) and all of its measurements are summarised into
    /// per-(provider, transport) [`crate::records::WindowSample`]s for
    /// that window.
    pub window_nanos: u64,
}

/// Simulated span the windowed series covers: clients are assigned a
/// start time uniformly inside one simulated day, mirroring the paper's
/// day-long vantage-point rotation (§3.1).
pub const CAMPAIGN_DURATION_NANOS: u64 = 24 * 3_600_000_000_000;

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 2021,
            scale: 1.0,
            runs_per_client: 2,
            geoloc_error_rate: 0.0088,
            atlas_probes_per_country: 10,
            atlas_samples_per_country: 250,
            measurement: MeasurementOptions::default(),
            perfect_anycast: false,
            threads: 0,
            shard_size: 0,
            protocols: ProtocolSet::EMPTY,
            pages_per_client: 0,
            window_nanos: 0,
        }
    }
}

impl CampaignConfig {
    /// The clients-per-work-unit granularity actually used (resolves the
    /// `0 = default` convention of [`CampaignConfig::shard_size`]).
    pub fn effective_shard_size(&self) -> usize {
        if self.shard_size == 0 {
            DEFAULT_SHARD_SIZE
        } else {
            self.shard_size
        }
    }

    /// A reduced-scale config for tests and examples (~10% of clients,
    /// one run each, fewer Atlas samples).
    pub fn quick(seed: u64) -> Self {
        CampaignConfig {
            seed,
            scale: 0.1,
            runs_per_client: 1,
            atlas_probes_per_country: 4,
            atlas_samples_per_country: 25,
            ..CampaignConfig::default()
        }
    }
}

/// The campaign driver.
///
/// ```no_run
/// use dohperf_core::campaign::{Campaign, CampaignConfig};
/// // Reduced scale for examples; scale 1.0 reproduces the paper's 22k clients.
/// let dataset = Campaign::new(CampaignConfig::quick(42)).run();
/// assert!(dataset.countries.len() >= 224);
/// ```
pub struct Campaign {
    config: CampaignConfig,
    flight: Option<FlightPlan>,
}

/// Flight-recorder wiring for a campaign run. Lives on [`Campaign`] rather
/// than [`CampaignConfig`] because it holds collection state, not knobs
/// that define the dataset (tracing never changes the dataset).
struct FlightPlan {
    /// Record 1 in N clients (0 disables probabilistic sampling).
    sample_every: u64,
    /// Record exactly this client, regardless of sampling (explain mode).
    only_client: Option<u64>,
    /// Completed traces, pushed by worker threads; sorted by client id
    /// when taken so the output is thread-count invariant.
    collected: Mutex<Vec<QueryTrace>>,
    /// Explain mode: the targeted client's record and whether the Maxmind
    /// filter retained it.
    explained: Mutex<Option<(ClientRecord, bool)>>,
}

impl FlightPlan {
    fn disabled() -> Self {
        FlightPlan {
            sample_every: 0,
            only_client: None,
            collected: Mutex::new(Vec::new()),
            explained: Mutex::new(None),
        }
    }

    /// Should this client be recorded? `fork_draw` is the client's
    /// dedicated `trace-sample` fork draw.
    fn records(&self, client_id: u64, fork_draw: u64) -> bool {
        self.only_client == Some(client_id) || flight::sampled(fork_draw, self.sample_every)
    }
}

/// Everything `repro explain` needs about one replayed client.
pub struct ClientExplain {
    /// The client's measured record, exactly as the full campaign
    /// computes it (same RNG lineage, bit-identical medians).
    pub record: ClientRecord,
    /// Whether the Maxmind mismatch filter kept the record.
    pub retained: bool,
    /// The client's full span tree.
    pub trace: QueryTrace,
}

impl Campaign {
    /// Create a campaign with the given configuration.
    pub fn new(config: CampaignConfig) -> Self {
        assert!(config.scale > 0.0 && config.scale <= 1.0, "scale in (0,1]");
        assert!(config.runs_per_client >= 1);
        Campaign {
            config,
            flight: None,
        }
    }

    /// Arm the flight recorder for 1-in-`every` clients. The sampling
    /// decision is a position-independent fork of each client's RNG
    /// stream, so arming (or changing `every`) never perturbs the
    /// simulation — only which clients leave a trace behind.
    pub fn with_trace_sampling(mut self, every: u64) -> Self {
        if every > 0 {
            let plan = self.flight.get_or_insert_with(FlightPlan::disabled);
            plan.sample_every = every;
        }
        self
    }

    /// Arm the flight recorder for exactly one client (explain mode).
    pub fn with_trace_client(mut self, client_id: u64) -> Self {
        let plan = self.flight.get_or_insert_with(FlightPlan::disabled);
        plan.only_client = Some(client_id);
        self
    }

    /// Drain the traces collected by the last run, in client-id order
    /// (client ids are globally ordered by canonical country, so this is
    /// the sequential-walk order for any thread count).
    pub fn take_traces(&self) -> Vec<QueryTrace> {
        let Some(plan) = &self.flight else {
            return Vec::new();
        };
        let mut traces = std::mem::take(&mut *plan.collected.lock());
        traces.sort_by_key(|t| t.client_id);
        traces
    }

    /// Replay exactly one client and return its record plus span tree.
    ///
    /// Runs a single-client range — per-client simulation epochs make
    /// every client self-contained, so the replayed record is
    /// bit-identical to the one a full campaign at the same config
    /// produces. Returns `None` if the id is outside the campaign's
    /// client range.
    pub fn explain_client(config: CampaignConfig, client_id: u64) -> Option<ClientExplain> {
        let campaign = Campaign::new(config).with_trace_client(client_id);
        let plan = campaign.plan();
        let country = (0..plan.counts.len()).find(|&i| {
            client_id > plan.bases[i] && client_id <= plan.bases[i] + plan.counts[i] as u64
        })?;
        let offset = (client_id - plan.bases[country] - 1) as usize;
        let spec = ShardSpec {
            country,
            start: offset,
            end: offset + 1,
        };
        campaign
            .run_range(&plan, spec, &mut DiscardSink)
            .expect("the discarding sink never fails");
        let flight = campaign.flight.as_ref().expect("armed above");
        let (record, retained) = flight.explained.lock().take()?;
        let trace = std::mem::take(&mut *flight.collected.lock()).pop()?;
        Some(ClientExplain {
            record,
            retained,
            trace,
        })
    }

    /// Run the full campaign, returning the dataset.
    ///
    /// The dataset is a pure function of the seed: work is sharded into
    /// per-country client-ID ranges across [`CampaignConfig::threads`]
    /// work-stealing workers, every client derives its own RNG lineage
    /// from the master seed, and results merge in canonical order, so any
    /// thread count and any shard size produce byte-identical output.
    pub fn run(&self) -> Dataset {
        let plan = {
            let _phase = phases::phase("topology-build");
            self.plan()
        };
        let shards = shard_ranges(&plan, self.config.effective_shard_size());
        let results = {
            let _phase = phases::phase("simulate");
            self.run_sharded(&plan, &shards, |i| {
                let spec = shards[i];
                let mut records = Vec::with_capacity(spec.end - spec.start);
                let outcome = self
                    .run_range(
                        &plan,
                        spec,
                        &mut VecSink {
                            records: &mut records,
                        },
                    )
                    .expect("the in-memory sink never fails");
                ((records, outcome), spec.end - spec.start)
            })
        };

        // Merge in canonical range order; workers finished in arbitrary
        // order but each slot holds exactly its range's records.
        let _phase = phases::phase("merge");
        let mut records = Vec::new();
        let mut discarded = 0usize;
        let mut atlas_do53_ms = Vec::new();
        let mut metrics = CountryMetrics::new(&plan);
        for (spec, (range_records, outcome)) in shards.iter().zip(results) {
            metrics.push(spec, &outcome);
            records.extend(range_records);
            discarded += outcome.discarded;
            if let Some(samples) = outcome.atlas_do53_ms {
                atlas_do53_ms.push((spec.country, samples));
            }
        }
        metrics.flush();

        let (observed_ases, observed_resolvers) =
            observed_infrastructure(records.len(), plan.country_list.len());

        warn_on_dropped_trace_events();
        Dataset {
            records,
            countries: plan.countries,
            atlas_do53_ms,
            discarded_mismatches: discarded,
            observed_ases,
            observed_resolvers,
        }
    }

    /// Run the full campaign, streaming records to a store directory
    /// instead of accumulating them in memory.
    ///
    /// Each client-ID range spills its records through a [`ChunkWriter`]
    /// into `dir/shards/shard-{index:05}.chunks` as clients are
    /// measured, so a worker's peak resident record count is the chunk
    /// budget (`chunk_budget` 0 means the crate default), not the range
    /// size. When all ranges finish, the spill files are concatenated
    /// into `records.chunks` in canonical order and the manifest is
    /// written.
    ///
    /// Chunk boundaries are anchored at in-country client *offsets* that
    /// are multiples of the budget (not at retained-record counts, which
    /// would shift with the discard pattern ahead of a split), and the
    /// range granularity is rounded up to a multiple of the budget, so
    /// every range boundary is also a chunk boundary. The merged store is
    /// therefore byte-identical for any [`CampaignConfig::threads`] *and*
    /// any [`CampaignConfig::shard_size`] value — the same contract
    /// [`Campaign::run`] gives for the in-memory dataset.
    ///
    /// Chunk encoding + CRC run on a background
    /// [`dohperf_store::EncoderPool`] sized by
    /// [`dohperf_store::PipelineConfig::auto`]; use
    /// [`Campaign::run_to_store_with`] to pin the pool shape. The
    /// encoded bytes are identical either way.
    pub fn run_to_store(
        &self,
        dir: &Path,
        chunk_budget: usize,
    ) -> dohperf_store::Result<StoreRunSummary> {
        self.run_to_store_with(dir, chunk_budget, dohperf_store::PipelineConfig::auto())
    }

    /// [`Campaign::run_to_store`] with an explicit encoder-pipeline
    /// shape. `pipeline.workers == 0` encodes inline on the simulation
    /// workers (the pre-pipeline behaviour); any worker/queue-depth
    /// combination produces byte-identical store files — the pipeline
    /// reassembles chunks in submission order per shard and the shard
    /// spill files merge in canonical order regardless.
    ///
    /// Publishes per-run gauges after the merge: `store.encode_ms`
    /// (wall-clock summed across encoder threads), `store.encoder_workers`,
    /// and `store.encoder_queue_depth` (peak submitted-but-unwritten
    /// chunks across any shard writer).
    pub fn run_to_store_with(
        &self,
        dir: &Path,
        chunk_budget: usize,
        pipeline: dohperf_store::PipelineConfig,
    ) -> dohperf_store::Result<StoreRunSummary> {
        let plan = {
            let _phase = phases::phase("topology-build");
            self.plan()
        };
        let budget = if chunk_budget == 0 {
            DEFAULT_CHUNK_BUDGET
        } else {
            chunk_budget
        };
        // Round the range granularity up to a multiple of the chunk
        // budget so every range starts exactly on a chunk boundary.
        let granularity = self
            .config
            .effective_shard_size()
            .div_ceil(budget)
            .saturating_mul(budget);
        let shards = shard_ranges(&plan, granularity);
        let shards_dir = dir.join("shards");
        std::fs::create_dir_all(&shards_dir)?;

        let _simulate_phase = phases::phase("simulate");
        let pool = dohperf_store::EncoderPool::new(pipeline);
        let spill_path =
            |i: usize| -> std::path::PathBuf { shards_dir.join(format!("shard-{i:05}.chunks")) };
        let results = self.run_sharded(&plan, &shards, |i| {
            let spec = shards[i];
            let result: dohperf_store::Result<StoreShard> = (|| {
                let file = BufWriter::new(File::create(spill_path(i))?);
                let mut sink = StoreSink {
                    writer: ChunkWriter::with_pool(file, budget, &pool),
                    every: budget,
                };
                let outcome = self.run_range(&plan, spec, &mut sink)?;
                let stats = sink.writer.finish()?;
                Ok(StoreShard { outcome, stats })
            })();
            (result, spec.end - spec.start)
        });
        drop(_simulate_phase);

        // Concatenate spill files in canonical range order: chunks are
        // self-contained, so concatenation is the merge.
        let _store_phase = phases::phase("store-merge");
        let mut out = BufWriter::new(File::create(dir.join(RECORDS_FILE))?);
        let mut totals = WriterStats::default();
        let mut retained = 0usize;
        let mut discarded = 0usize;
        let mut atlas_do53_ms: Vec<(u32, Vec<f64>)> = Vec::new();
        let mut metrics = CountryMetrics::new(&plan);
        for (range_index, (spec, result)) in shards.iter().zip(results).enumerate() {
            let shard = result?;
            metrics.push(spec, &shard.outcome);
            let path = spill_path(range_index);
            let mut spill = File::open(&path)?;
            std::io::copy(&mut spill, &mut out)?;
            std::fs::remove_file(&path)?;
            totals = totals.merge(shard.stats);
            retained += shard.outcome.retained;
            discarded += shard.outcome.discarded;
            if let Some(samples) = shard.outcome.atlas_do53_ms {
                atlas_do53_ms.push((spec.country as u32, samples));
            }
        }
        metrics.flush();
        out.flush()?;
        drop(out);
        let _ = std::fs::remove_dir(&shards_dir);

        let (observed_ases, observed_resolvers) =
            observed_infrastructure(retained, plan.country_list.len());
        let manifest = Manifest {
            countries: plan
                .countries
                .iter()
                .map(|iso| store_io::iso_bytes(iso))
                .collect(),
            atlas_do53_ms,
            discarded_mismatches: discarded as u64,
            observed_ases: observed_ases as u64,
            observed_resolvers: observed_resolvers as u64,
            total_records: totals.records,
            total_chunks: totals.chunks,
            total_bytes: totals.bytes,
        };
        std::fs::write(dir.join(MANIFEST_FILE), manifest.encode())?;

        dohperf_telemetry::counter!("store.chunks_written").add(totals.chunks);
        dohperf_telemetry::counter!("store.bytes_written").add(totals.bytes);
        let pool_stats = pool.stats();
        dohperf_telemetry::gauge!("store.encoder_workers", per_run).set(pool_stats.workers as i64);
        dohperf_telemetry::gauge!("store.encoder_queue_depth", per_run)
            .set(pool_stats.max_queue_depth as i64);
        dohperf_telemetry::gauge!("store.encode_ms", per_run)
            .set((pool_stats.encode_nanos / 1_000_000) as i64);
        dohperf_telemetry::trace::event(
            "campaign",
            format!(
                "store: {} records in {} chunks ({} bytes) -> {}",
                totals.records,
                totals.chunks,
                totals.bytes,
                dir.display()
            ),
        );

        warn_on_dropped_trace_events();
        Ok(StoreRunSummary {
            stats: totals,
            discarded,
        })
    }

    /// Precompute the campaign layout shared by every execution mode:
    /// population sample, country list, per-country client counts with
    /// prefix-summed exclusive client-ID bases (shard `i` numbers its
    /// clients `bases[i]+1 ..= bases[i]+counts[i]`, exactly the IDs a
    /// sequential walk over the countries would assign), and the worker
    /// thread count.
    fn plan(&self) -> Plan {
        // Register the deterministic stub-cache counters up front: legacy
        // campaigns pin them at zero instead of omitting them (the metrics
        // gate treats a baseline metric missing from a run as drift), and
        // page-load campaigns register their page counters the same way so
        // a loss-free run still reports every pinned metric.
        let _ = dohperf_telemetry::counter!("cache.hits");
        let _ = dohperf_telemetry::counter!("cache.misses");
        let _ = dohperf_telemetry::counter!("cache.evictions");
        if self.config.pages_per_client > 0 {
            let _ = dohperf_telemetry::counter!("campaign.page_visits");
            let _ = dohperf_telemetry::counter!("campaign.page_queries");
            let _ = dohperf_telemetry::counter!("campaign.page_tcp_stalls");
        }
        let root_rng = SimRng::new(self.config.seed).fork("campaign");
        let population = PopulationModel::sample(&mut root_rng.clone());
        let country_list: Vec<&'static Country> = population.countries().to_vec();
        let countries: Vec<&'static str> = country_list.iter().map(|c| c.iso).collect();

        let counts: Vec<usize> = (0..country_list.len())
            .map(|i| {
                let full_count = population.count(i);
                ((full_count as f64 * self.config.scale).round() as usize).clamp(1, full_count)
            })
            .collect();
        let mut bases = Vec::with_capacity(counts.len());
        let mut acc = 0u64;
        for &c in &counts {
            bases.push(acc);
            acc += c as u64;
        }

        let threads = match self.config.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };

        dohperf_telemetry::trace::event(
            "campaign",
            format!(
                "start: {} countries, seed {}, scale {}, {threads} workers",
                country_list.len(),
                self.config.seed,
                self.config.scale
            ),
        );

        Plan {
            root_rng,
            population,
            country_list,
            countries,
            counts,
            bases,
            threads,
        }
    }

    /// Execute every client-ID range across the plan's worker threads
    /// with work stealing. Each worker starts owning a contiguous block
    /// of ranges in a FIFO deque (so it walks its own block in canonical
    /// order, which keeps per-country state like latency caches warm);
    /// when its deque runs dry it steals from the back of its peers'
    /// deques, draining the tail of large countries instead of idling.
    /// `shard_fn` receives a range index into `shards` and returns the
    /// range result plus its client count (for throughput accounting);
    /// results come back indexed in canonical range order regardless of
    /// which worker ran what.
    fn run_sharded<T, F>(&self, plan: &Plan, shards: &[ShardSpec], shard_fn: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> (T, usize) + Sync,
    {
        let n = shards.len();
        let threads = plan.threads.min(n.max(1));
        dohperf_telemetry::gauge!("campaign.workers", per_run).set(threads as i64);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let queues: Vec<deque::Worker<usize>> =
            (0..threads).map(|_| deque::Worker::new_fifo()).collect();
        for (w, queue) in queues.iter().enumerate() {
            for i in (w * n / threads)..((w + 1) * n / threads) {
                queue.push(i);
            }
        }
        let stealers: Vec<deque::Stealer<usize>> = queues.iter().map(|q| q.stealer()).collect();
        crossbeam::thread::scope(|scope| {
            for (worker, queue) in queues.into_iter().enumerate() {
                let (slots, shard_fn, stealers) = (&slots, &shard_fn, &stealers);
                scope.spawn(move |_| {
                    let started = Instant::now();
                    let mut busy = std::time::Duration::ZERO;
                    let mut steals = 0u64;
                    let mut range_count = 0usize;
                    let mut client_count = 0usize;
                    loop {
                        let i = match queue.pop() {
                            Some(i) => i,
                            None => match steal_range(worker, stealers) {
                                Some(i) => {
                                    steals += 1;
                                    i
                                }
                                None => break,
                            },
                        };
                        let shard_started = Instant::now();
                        let (result, clients) = shard_fn(i);
                        let shard_wall = shard_started.elapsed();
                        busy += shard_wall;
                        dohperf_telemetry::histogram!("campaign.shard_wall_ms", per_run)
                            .record_ms(shard_wall.as_secs_f64() * 1_000.0);
                        range_count += 1;
                        client_count += clients;
                        *slots[i].lock() = Some(result);
                    }
                    // Scheduler observability (DESIGN.md §16): per-worker
                    // busy/idle/steal series, published even for workers
                    // that never won a range — an all-idle worker is the
                    // signal the utilization report exists to surface.
                    let wall = started.elapsed();
                    dohperf_telemetry::scheduler::publish_worker(
                        worker,
                        busy.as_secs_f64() * 1_000.0,
                        (wall.saturating_sub(busy)).as_secs_f64() * 1_000.0,
                        range_count as u64,
                        client_count as u64,
                        steals,
                    );
                    if range_count > 0 {
                        let secs = wall.as_secs_f64().max(1e-9);
                        dohperf_telemetry::histogram!("campaign.worker_wall_ms", per_run)
                            .record_ms(secs * 1_000.0);
                        dohperf_telemetry::trace::event_ms(
                            "campaign",
                            format!(
                                "worker {worker}: {range_count} ranges, \
                                 {client_count} clients ({:.0} clients/s)",
                                client_count as f64 / secs
                            ),
                            secs * 1_000.0,
                        );
                        if threads > 1 {
                            eprintln!(
                                "[campaign] worker {worker}: {range_count} ranges, \
                                 {client_count} clients in {secs:.2}s ({:.0} clients/s)",
                                client_count as f64 / secs
                            );
                        }
                    }
                });
            }
        })
        .expect("campaign worker panicked");

        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every range was processed"))
            .collect()
    }

    /// Execute one client-ID range of one country, handing each retained
    /// record to the sink as it is measured.
    ///
    /// Everything stochastic inside the range descends from forks of the
    /// shared (never-advanced) campaign root stream, keyed by the country's
    /// ISO code or by globally stable client IDs — never from worker-local
    /// or range-local state. On top of that, each client is simulated in
    /// its own epoch: the clock rewinds to zero, the jitter/engine RNG
    /// streams re-seed from a `("client-sim", client_id)` fork, and the
    /// client's node ids are anchored at `base_nodes + 2 * offset`. A
    /// client's measurement is therefore a pure function of
    /// `(seed, country, client_id)`, and any split of a country into
    /// ranges concatenates to the unsplit result. The sink decides what a
    /// record costs to hold: the in-memory path pushes into a `Vec`, the
    /// store path pushes into a [`ChunkWriter`] whose budget bounds
    /// residency.
    fn run_range(
        &self,
        plan: &Plan,
        spec: ShardSpec,
        sink: &mut dyn RangeSink,
    ) -> std::io::Result<RangeOutcome> {
        let root_rng = &plan.root_rng;
        let country = plan.country_list[spec.country];
        let count = plan.counts[spec.country];
        let client_id_base = plan.bases[spec.country];
        let iso = country.iso;
        let mut tb = Testbed::new(root_rng.fork_parts(&["testbed-", iso]).seed());
        // The prefix base equals the range's first global client index, so
        // the /24s handed out (and their per-prefix mislabel draws) match
        // the layout of a single sequential allocator.
        let mut geoloc = GeolocationService::with_prefix_base(
            root_rng.fork_parts(&["geoloc-", iso]),
            self.config.geoloc_error_rate,
            plan.countries.clone(),
            (client_id_base + spec.start as u64) as u32,
        );

        // client_sites only forks from the rng it is handed, so a clone of
        // the root stream yields the same sites the sequential walk saw;
        // enumerate before skipping so offsets stay country-absolute.
        let sites = plan
            .population
            .client_sites(spec.country, &mut root_rng.clone());
        let mut batch = DerivationBatch::with_capacity(self.config.runs_per_client as usize);
        // Page shape parameters are a per-country fork of the root
        // stream, so every range of a country sees the same profile.
        let page_profile = (self.config.pages_per_client > 0)
            .then(|| pageload::PageProfile::for_country(root_rng, iso));
        let chunk_every = sink.chunk_every();
        let mut retained = 0usize;
        let mut discarded = 0usize;
        let mut sim_nanos = 0u64;
        for (offset, site) in sites
            .into_iter()
            .enumerate()
            .skip(spec.start)
            .take(spec.end - spec.start)
        {
            // The range's first client walks every cold path (latency
            // cache fills, label interning, pool priming); it is warmup
            // for the steady-state allocation gate, the rest are not.
            dohperf_telemetry::alloc::set_warmup(offset == spec.start);
            // Chunk boundaries anchor at country-absolute offsets that are
            // multiples of the budget, so the store's chunk layout is
            // independent of where ranges split.
            if chunk_every > 0 && offset > spec.start && offset % chunk_every == 0 {
                sink.chunk_boundary()?;
            }
            let client_id = client_id_base + offset as u64 + 1;
            let mut client_rng = root_rng.fork_indexed("client", client_id);
            // Per-client simulation epoch: rewind the clock and re-seed
            // the simulator's internal streams from a client-keyed fork,
            // then anchor this client's two node ids (exit host +
            // resolver) at their offset-determined slots.
            tb.sim
                .begin_epoch(&root_rng.fork_indexed("client-sim", client_id));
            tb.sim.anchor_next_node(tb.base_nodes + 2 * offset);
            // The sampling draw is a fork (forks never advance the parent
            // stream), so arming the recorder cannot perturb the
            // simulation — only which clients leave a trace behind.
            let root_span = match &self.flight {
                Some(plan)
                    if plan.records(client_id, client_rng.fork("trace-sample").next_u64()) =>
                {
                    flight::begin(
                        flight::derive_trace_id(self.config.seed, iso, client_id),
                        client_id,
                        iso,
                    );
                    Some(flight::start_span(
                        "campaign",
                        format!("client {client_id} [{iso}]"),
                        tb.sim.now().as_nanos(),
                    ))
                }
                _ => None,
            };
            let exit = ExitNode::create(
                &mut tb.sim,
                &mut geoloc,
                country,
                spec.country,
                site.position,
                client_id,
                &mut client_rng,
            );
            let record = self.measure_client(
                &mut tb,
                &exit,
                &geoloc,
                &mut client_rng,
                &mut batch,
                page_profile.as_ref(),
            );
            let agrees = record.countries_agree();
            if let Some(span) = root_span {
                flight::attr(span, "maxmind_country", record.maxmind_country.to_string());
                flight::attr(span, "retained", agrees.to_string());
                flight::end_span(span, tb.sim.now().as_nanos());
                if let (Some(plan), Some(trace)) = (&self.flight, flight::take()) {
                    plan.collected.lock().push(trace);
                }
            }
            if let Some(plan) = &self.flight {
                if plan.only_client == Some(client_id) {
                    *plan.explained.lock() = Some((record.clone(), agrees));
                }
            }
            if agrees {
                self.observe_windows(&record);
                sink.emit(record)?;
                retained += 1;
            } else {
                discarded += 1;
            }
            // Summed as integer nanoseconds so any grouping of ranges
            // adds up to the same per-country total bit-for-bit (f64
            // addition is not associative; u64 addition is).
            sim_nanos += tb.sim.now().as_nanos();
        }

        // RIPE Atlas remedy for the Super Proxy countries (§3.5). It runs
        // exactly once per country, in the range that owns the country's
        // final client, inside its own epoch with the probe node ids
        // anchored after the last client's slots — so its samples are
        // identical no matter how the country was split.
        let atlas_do53_ms = if spec.end == count && SuperProxy::resolves_dns_for(iso) {
            tb.sim
                .begin_epoch(&root_rng.fork_parts(&["atlas-sim-", iso]));
            tb.sim.anchor_next_node(tb.base_nodes + 2 * count);
            let mut atlas = AtlasNetwork::new();
            let mut atlas_rng = root_rng.fork_parts(&["atlas-", iso]);
            let probe_indices = atlas.deploy_probes(
                &mut tb.sim,
                country,
                self.config.atlas_probes_per_country,
                &mut atlas_rng,
            );
            let mut samples = Vec::with_capacity(self.config.atlas_samples_per_country);
            for s in 0..self.config.atlas_samples_per_country {
                let probe = probe_indices[s % probe_indices.len()];
                let d = atlas.measure_do53(&mut tb.sim, probe, tb.auth_ns, &mut atlas_rng);
                samples.push(d.as_millis_f64());
            }
            sim_nanos += tb.sim.now().as_nanos();
            Some(samples)
        } else {
            None
        };

        Ok(RangeOutcome {
            retained,
            discarded,
            sim_nanos,
            atlas_do53_ms,
        })
    }

    /// Measure one client: four DoH providers plus Do53, `runs_per_client`
    /// times, keeping the per-client median of runs (the paper's two runs
    /// are averaged; with jitter, medians are the robust equivalent).
    fn measure_client(
        &self,
        tb: &mut Testbed,
        exit: &ExitNode,
        geoloc: &GeolocationService,
        client_rng: &mut SimRng,
        batch: &mut DerivationBatch,
        page_profile: Option<&pageload::PageProfile>,
    ) -> ClientRecord {
        let mut doh = Vec::with_capacity(ALL_PROVIDERS.len());
        for (pi, &provider) in ALL_PROVIDERS.iter().enumerate() {
            let deployment = &tb.deployments[pi];
            // Sticky anycast assignment per (client, provider).
            let mut anycast_rng = client_rng.fork_parts(&["anycast-", provider.name()]);
            let policy = if self.config.perfect_anycast {
                AnycastPolicy::perfect()
            } else {
                provider.anycast_policy()
            };
            let pop_index = policy.assign(deployment, &exit.position, &mut anycast_rng);
            batch.clear();
            for run in 0..self.config.runs_per_client {
                let mut run_rng =
                    client_rng.fork_indexed_parts(&["doh-", provider.name()], run.into());
                // The measurement body is the per-query simulation path:
                // under the counting allocator, any allocation in here
                // (outside warmup/exempt scopes) fails the gate.
                let obs = {
                    let _hot = dohperf_telemetry::alloc::hot_scope();
                    tb.network.doh_measurement_with(
                        &mut tb.sim,
                        tb.client,
                        exit,
                        provider,
                        deployment,
                        pop_index,
                        tb.auth_ns,
                        &mut run_rng,
                        &self.config.measurement,
                    )
                };
                dohperf_telemetry::counter!("campaign.doh_queries").inc();
                if flight::active() {
                    record_wire_phase(&format!("c{}-r{run}.{}", exit.id, provider.hostname()));
                    // record_derivation calls the same derive_* functions
                    // the batch mirrors op-for-op, so the traced spans
                    // carry exactly the values the batch will derive.
                    record_derivation(&obs);
                }
                batch.push(&obs);
            }
            // Batched Eq 1-8 over the run block: two column-wise loops the
            // compiler can vectorize, bit-identical to the scalar path.
            batch.derive();
            let nearest = deployment.nearest_index(&exit.position);
            let t_doh_ms = median(batch.t_doh_ms_mut());
            let t_dohr_ms = median(batch.t_dohr_ms_mut());
            if flight::active() {
                let now = tb.sim.now().as_nanos();
                let span = flight::start_span("campaign", format!("summary {provider}"), now);
                flight::attr(span, "median_t_doh_ms", format!("{t_doh_ms}"));
                flight::attr(span, "median_t_dohr_ms", format!("{t_dohr_ms}"));
                flight::attr(span, "pop_index", pop_index.to_string());
                flight::end_span(span, now);
            }
            doh.push(DohSample {
                provider,
                t_doh_ms,
                t_dohr_ms,
                pop_index,
                pop_distance_miles: deployment.distance_miles(&exit.position, pop_index),
                nearest_pop_distance_miles: deployment.distance_miles(&exit.position, nearest),
            });
        }

        // Do53 measurement (one per run; header value or Atlas remedy).
        let mut do53_runs = Vec::with_capacity(self.config.runs_per_client as usize);
        let mut hijacked = false;
        let mut qname_buf = [0u8; SUBDOMAIN_BUF_LEN];
        for run in 0..self.config.runs_per_client {
            let mut run_rng = client_rng.fork_indexed("do53", run.into());
            let obs = {
                let _hot = dohperf_telemetry::alloc::hot_scope();
                // Same RNG draw fresh_subdomain would make, formatted on
                // the stack instead of into a fresh String.
                let qname = format_subdomain(tb.fresh_subdomain_id(), &mut qname_buf);
                tb.network.do53_measurement_with(
                    &mut tb.sim,
                    tb.client,
                    exit,
                    tb.web_server,
                    tb.auth_ns,
                    qname,
                    &mut run_rng,
                    &self.config.measurement,
                )
            };
            dohperf_telemetry::counter!("campaign.do53_queries").inc();
            hijacked = obs.resolved_at_super_proxy;
            if !hijacked {
                do53_runs.push(obs.tun.dns.as_millis_f64());
            }
        }
        let (do53_ms, do53_source) = if hijacked {
            (None, Do53Source::RipeAtlasRemedy)
        } else {
            (Some(median(&mut do53_runs)), Do53Source::BrightDataHeader)
        };
        if flight::active() {
            let now = tb.sim.now().as_nanos();
            let span = flight::start_span("campaign", "summary do53".to_string(), now);
            flight::attr(span, "source", format!("{do53_source:?}"));
            if let Some(ms) = do53_ms {
                flight::attr(span, "median_t_do53_ms", format!("{ms}"));
            }
            flight::end_span(span, now);
        }

        // Extended transports (DESIGN.md §13): one connection-lifecycle
        // measurement per (transport, provider) pair. This block runs
        // strictly after the legacy loops, draws its measurement noise
        // only from fresh protocol-keyed forks (forks never advance
        // `client_rng`), and checkpoints the simulator's internal
        // streams so its per-sample jitter draws roll back afterwards.
        // An empty set therefore reproduces the legacy dataset
        // byte-for-byte, and a non-empty set never perturbs the legacy
        // samples — not for this client and not for any later one.
        let mut transports = Vec::new();
        transports.reserve_exact(self.config.protocols.len() * ALL_PROVIDERS.len());
        if !self.config.protocols.is_empty() {
            let auth_ns = tb.auth_ns;
            let Testbed {
                sim,
                network,
                deployments,
                ..
            } = tb;
            sim.with_rng_checkpoint(|sim| {
                for transport in self.config.protocols.iter() {
                    for (pi, &provider) in ALL_PROVIDERS.iter().enumerate() {
                        let deployment = &deployments[pi];
                        // Same sticky anycast PoP the legacy DoH loop
                        // used for this (client, provider) pair.
                        let pop_index = doh[pi].pop_index;
                        let mut t_rng = client_rng.fork_parts(&[
                            "transport-",
                            transport.name(),
                            "-",
                            provider.name(),
                        ]);
                        let obs = {
                            let _hot = dohperf_telemetry::alloc::hot_scope();
                            network.transport_measurement(
                                sim,
                                exit,
                                provider,
                                deployment,
                                pop_index,
                                auth_ns,
                                transport,
                                self.config.measurement.extra_loss_p,
                                self.config.measurement.doh_cache_hit_p,
                                &mut t_rng,
                            )
                        };
                        dohperf_telemetry::counter!("campaign.transport_queries").inc();
                        record_transport_derivation(&obs);
                        transports.push(TransportSample {
                            transport,
                            provider,
                            cold_ms: derive_transport_cold_ms(&obs),
                            warm_ms: derive_transport_warm_ms(&obs),
                            resumed_ms: derive_transport_resumed_ms(&obs),
                            handshake_ms: derive_transport_handshake_ms(&obs),
                        });
                    }
                }
            });
        }

        // Page-load workload (DESIGN.md §15): one synthetic dependency
        // DAG per client, replayed over every (transport, provider)
        // pair with a shared connection and the stub cache in the loop.
        // Same isolation discipline as the transports block above: runs
        // strictly after the legacy loops, draws only from page-keyed
        // forks of `client_rng`, and rolls the simulator's internal
        // streams back afterwards — so enabling pages never perturbs
        // the legacy or transports samples, for this client or any
        // later one.
        let mut pages = Vec::new();
        if let Some(profile) = page_profile {
            let visits = self.config.pages_per_client;
            debug_assert!(
                visits >= 2,
                "pages_per_client needs a cold visit plus at least one warm revisit"
            );
            // One page per client, shared by all pairs: the PLT deltas
            // compare transports on the *same* DAG, isolating protocol
            // effects from page-shape noise.
            let mut model_rng = client_rng.fork("page-model");
            let model = pageload::PageModel::generate(profile, &mut model_rng);
            pages.reserve_exact(DnsTransport::ALL.len() * ALL_PROVIDERS.len());
            let auth_ns = tb.auth_ns;
            let Testbed {
                sim, deployments, ..
            } = tb;
            sim.with_rng_checkpoint(|sim| {
                for &transport in DnsTransport::ALL.iter() {
                    for (pi, &provider) in ALL_PROVIDERS.iter().enumerate() {
                        let deployment = &deployments[pi];
                        // Same sticky anycast PoP the legacy DoH loop
                        // used for this (client, provider) pair.
                        let pop_index = doh[pi].pop_index;
                        let mut p_rng = client_rng.fork_parts(&[
                            "page-",
                            transport.name(),
                            "-",
                            provider.name(),
                        ]);
                        let outcome = pageload::measure_page(
                            sim,
                            exit,
                            provider,
                            deployment,
                            pop_index,
                            auth_ns,
                            transport,
                            self.config.measurement.extra_loss_p,
                            &model,
                            visits,
                            &mut p_rng,
                        );
                        pages.push(PageSample {
                            transport,
                            provider,
                            domains: model.len() as u32,
                            unique_names: model.unique_names as u32,
                            depth: model.max_depth(),
                            plt_cold_ms: outcome.plt_cold_ms,
                            plt_warm_ms: outcome.plt_warm_ms,
                            cold_cache_hits: outcome.cold_cache_hits,
                            warm_cache_hits: outcome.warm_cache_hits,
                        });
                    }
                }
            });
        }

        // Windowed series (DESIGN.md §16): assign this client a
        // simulated campaign-time window and summarise every measurement
        // block above into per-(provider, transport) window samples. The
        // slot comes from a fresh fork of the client's stream (forks
        // never advance the parent), and everything else is derived from
        // already-measured values — so enabling windowing never perturbs
        // the legacy, transports, or page samples.
        let mut windows = Vec::new();
        if let Some(width) = std::num::NonZero::new(self.config.window_nanos) {
            let start_nanos = client_rng.fork("window").next_u64() % CAMPAIGN_DURATION_NANOS;
            let window = (start_nanos / width).min(u32::MAX as u64) as u32;
            windows.reserve_exact(doh.len() + transports.len() + pages.len());
            for s in &doh {
                windows.push(WindowSample {
                    window,
                    provider: s.provider,
                    transport: DnsTransport::DoH,
                    queries: self.config.runs_per_client,
                    successes: self.config.runs_per_client,
                    latency_ms: s.t_doh_ms,
                    cache_lookups: 0,
                    cache_hits: 0,
                });
            }
            // One lifecycle measurement derives cold/warm/resumed, i.e.
            // three resolutions; the warm path is the steady-state
            // latency a long-lived stub would see.
            for s in &transports {
                windows.push(WindowSample {
                    window,
                    provider: s.provider,
                    transport: s.transport,
                    queries: 3,
                    successes: 3,
                    latency_ms: s.warm_ms,
                    cache_lookups: 0,
                    cache_hits: 0,
                });
            }
            // Page visits contribute cache activity, not query latency:
            // every DAG node probes the stub cache on every visit.
            for s in &pages {
                windows.push(WindowSample {
                    window,
                    provider: s.provider,
                    transport: s.transport,
                    queries: 0,
                    successes: 0,
                    latency_ms: 0.0,
                    cache_lookups: s.domains * self.config.pages_per_client,
                    cache_hits: s.cold_cache_hits + s.warm_cache_hits,
                });
            }
        }

        let ns_pos = tb.sim.topology().node(tb.auth_ns).spec.position;
        ClientRecord {
            client_id: exit.id,
            country_iso: exit.country_iso,
            country_index: exit.country_index,
            prefix: exit.prefix,
            maxmind_country: geoloc.lookup(exit.prefix).unwrap_or("??"),
            position: exit.position,
            nameserver_distance_miles: exit.position.distance_miles(&ns_pos),
            doh,
            do53_ms,
            do53_source,
            transports,
            pages,
            windows,
        }
    }

    /// Publish a retained record's window samples into the global
    /// `window.*` metric series. All window metrics are integer-atomic
    /// (counters and integer-microsecond histograms), so recording them
    /// from racing workers yields exactly the totals a sequential walk
    /// would — the series stays deterministic for any thread count and
    /// shard size.
    fn observe_windows(&self, record: &ClientRecord) {
        for s in &record.windows {
            dohperf_telemetry::windows::observe(
                s.window as u64,
                &dohperf_telemetry::windows::Observation {
                    transport: s.transport.name(),
                    queries: s.queries as u64,
                    successes: s.successes as u64,
                    timeouts: 0,
                    cache_lookups: s.cache_lookups as u64,
                    cache_hits: s.cache_hits as u64,
                    latency_ms: (s.queries > 0).then_some(s.latency_ms),
                },
            );
        }
    }
}

/// Precomputed campaign layout shared by every execution mode.
struct Plan {
    root_rng: SimRng,
    population: PopulationModel,
    country_list: Vec<&'static Country>,
    countries: Vec<&'static str>,
    /// Scaled client count per country.
    counts: Vec<usize>,
    /// Exclusive client-ID base per country (prefix sums of `counts`).
    bases: Vec<u64>,
    threads: usize,
}

/// One work unit: a contiguous in-country client-offset range
/// `[start, end)` of one country.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShardSpec {
    /// Canonical country index into the plan's country list.
    country: usize,
    /// First in-country client offset (inclusive).
    start: usize,
    /// One past the last in-country client offset.
    end: usize,
}

/// Slice every country into ranges of at most `granularity` clients, in
/// canonical (country, offset) order. Concatenating the ranges' clients
/// in this order is exactly the sequential walk, for any granularity.
fn shard_ranges(plan: &Plan, granularity: usize) -> Vec<ShardSpec> {
    let granularity = granularity.max(1);
    let mut shards = Vec::new();
    for (country, &count) in plan.counts.iter().enumerate() {
        let mut start = 0usize;
        while start < count {
            let end = count.min(start.saturating_add(granularity));
            shards.push(ShardSpec {
                country,
                start,
                end,
            });
            start = end;
        }
    }
    shards
}

/// Steal one range index for worker `me`, scanning peers round-robin
/// starting just past itself so contention spreads instead of piling
/// onto worker 0. Thieves take from the *back* of a victim's FIFO deque
/// — the victim's farthest-away work.
fn steal_range(me: usize, stealers: &[deque::Stealer<usize>]) -> Option<usize> {
    let n = stealers.len();
    for k in 1..n {
        let victim = (me + k) % n;
        loop {
            match stealers[victim].steal() {
                deque::Steal::Success(i) => return Some(i),
                deque::Steal::Empty => break,
                deque::Steal::Retry => continue,
            }
        }
    }
    None
}

/// Where a range's retained records go, plus the chunk-boundary protocol
/// the store path uses to keep chunk layout split-invariant.
trait RangeSink {
    /// Accept one retained record.
    fn emit(&mut self, record: ClientRecord) -> std::io::Result<()>;
    /// Chunk boundary interval in clients (0 = no boundaries).
    fn chunk_every(&self) -> usize {
        0
    }
    /// Called when the walk crosses a country-absolute offset that is a
    /// multiple of [`RangeSink::chunk_every`].
    fn chunk_boundary(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The in-memory path: records accumulate in a `Vec`.
struct VecSink<'a> {
    records: &'a mut Vec<ClientRecord>,
}

impl RangeSink for VecSink<'_> {
    fn emit(&mut self, record: ClientRecord) -> std::io::Result<()> {
        self.records.push(record);
        Ok(())
    }
}

/// The explain path: the targeted record is captured via the flight
/// plan, everything else is dropped.
struct DiscardSink;

impl RangeSink for DiscardSink {
    fn emit(&mut self, _record: ClientRecord) -> std::io::Result<()> {
        Ok(())
    }
}

/// The store path: records spill through a [`ChunkWriter`], with chunks
/// cut at offset-anchored boundaries.
struct StoreSink<W: std::io::Write> {
    writer: ChunkWriter<W>,
    every: usize,
}

impl<W: std::io::Write> RangeSink for StoreSink<W> {
    fn emit(&mut self, record: ClientRecord) -> std::io::Result<()> {
        self.writer
            .push(store_io::record_to_store(&record))
            .map_err(std::io::Error::from)
    }

    fn chunk_every(&self) -> usize {
        self.every
    }

    fn chunk_boundary(&mut self) -> std::io::Result<()> {
        self.writer.flush_boundary().map_err(std::io::Error::from)
    }
}

/// What a client-ID range reports after its records have gone to the sink.
struct RangeOutcome {
    retained: usize,
    discarded: usize,
    /// Simulated time spent in this range, in integer nanoseconds so any
    /// grouping of ranges sums to the same per-country total.
    sim_nanos: u64,
    /// Atlas Do53 samples, present only in the country-final range of
    /// Super-Proxy remedy countries.
    atlas_do53_ms: Option<Vec<f64>>,
}

/// A store-mode range: its outcome plus the spill file's chunk totals.
struct StoreShard {
    outcome: RangeOutcome,
    stats: WriterStats,
}

/// Merge-time aggregation of range outcomes back into the per-country
/// telemetry the per-country sharding used to publish from workers.
/// Publishing from the merge walk (canonical order, one thread) makes
/// metric totals and trace-event order independent of worker scheduling.
struct CountryMetrics<'a> {
    plan: &'a Plan,
    current: Option<usize>,
    retained: usize,
    discarded: usize,
    sim_nanos: u64,
}

impl<'a> CountryMetrics<'a> {
    fn new(plan: &'a Plan) -> Self {
        CountryMetrics {
            plan,
            current: None,
            retained: 0,
            discarded: 0,
            sim_nanos: 0,
        }
    }

    /// Fold in one range outcome; ranges must arrive in canonical order.
    fn push(&mut self, spec: &ShardSpec, outcome: &RangeOutcome) {
        if self.current != Some(spec.country) {
            self.flush();
            self.current = Some(spec.country);
        }
        self.retained += outcome.retained;
        self.discarded += outcome.discarded;
        self.sim_nanos += outcome.sim_nanos;
    }

    /// Publish the current country's totals, if any.
    fn flush(&mut self) {
        let Some(country) = self.current.take() else {
            return;
        };
        let iso = self.plan.country_list[country].iso;
        let sim_ms = self.sim_nanos as f64 / 1e6;
        dohperf_telemetry::histogram!("campaign.shard_sim_ms").record_ms(sim_ms);
        dohperf_telemetry::counter!("campaign.countries_measured").inc();
        dohperf_telemetry::counter!("campaign.clients_measured").add(self.retained as u64);
        dohperf_telemetry::counter!("campaign.clients_discarded").add(self.discarded as u64);
        dohperf_telemetry::trace::event_ms(
            "campaign",
            format!("shard {iso}: {} clients", self.retained),
            sim_ms,
        );
        self.retained = 0;
        self.discarded = 0;
        self.sim_nanos = 0;
    }
}

/// Totals from a [`Campaign::run_to_store`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreRunSummary {
    /// Record/chunk/byte totals of the merged `records.chunks`.
    pub stats: WriterStats,
    /// Records discarded by the Maxmind mismatch filter.
    pub discarded: usize,
}

/// Observed-infrastructure bookkeeping: the paper reports 2,190 client
/// ASes and 1,896 recursive resolvers. We synthesise the counts from the
/// retained record total (one resolver node per client, pooled by
/// country as a proxy for AS diversity).
fn observed_infrastructure(records: usize, countries: usize) -> (usize, usize) {
    let observed_resolvers = records.min(1_896 * records / 22_052 + 1);
    let observed_ases = (records / 10).max(countries);
    (observed_ases, observed_resolvers)
}

/// Publish the debug-sink drop count as the `trace.events_dropped`
/// per-run counter and warn on stderr when a run lost events — losing
/// events silently would make a truncated debug log look complete.
fn warn_on_dropped_trace_events() {
    let dropped = dohperf_telemetry::trace::publish_dropped();
    if dropped > 0 {
        eprintln!(
            "[campaign] warning: {dropped} trace events dropped \
             (debug ring buffer full; raise its capacity or trace less)"
        );
    }
}

/// Exercise the dnswire message phases for a traced DoH run: encode the
/// query as a GET, then decode it server-side, each emitting a flight
/// event. The simulated transport is time-only (it never builds wire
/// bytes), so this reconstructs the wire work the client logically did.
/// The query name is synthesised from immutable state — never
/// [`Testbed::fresh_subdomain`], which advances a counter and would make
/// tracing perturb the simulation.
fn record_wire_phase(qname: &str) {
    use dohperf_dns::doh::DohRequest;
    use dohperf_dns::message::Message;
    use dohperf_dns::name::DnsName;
    use dohperf_dns::types::RecordType;
    let Ok(name) = DnsName::parse(qname) else {
        return;
    };
    let message = Message::query(0, name, RecordType::A);
    if let Ok(request) = DohRequest::get(&message) {
        let _ = request.decode_message();
    }
}

fn median(xs: &mut [f64]) -> f64 {
    debug_assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohperf_providers::provider::ProviderKind;

    fn quick_dataset() -> Dataset {
        Campaign::new(CampaignConfig::quick(42)).run()
    }

    #[test]
    fn campaign_covers_every_country() {
        let ds = quick_dataset();
        assert!(ds.countries.len() >= 224);
        // At scale 0.1 every country still contributes at least 1 client.
        assert!(ds.country_count() >= 220, "{}", ds.country_count());
        assert!(!ds.records.is_empty());
    }

    #[test]
    fn every_record_has_four_providers() {
        let ds = quick_dataset();
        for r in &ds.records {
            assert_eq!(r.doh.len(), 4, "client {}", r.client_id);
            for provider in ALL_PROVIDERS {
                assert!(r.sample(provider).is_some());
            }
        }
    }

    #[test]
    fn super_proxy_countries_use_the_atlas_remedy() {
        let ds = quick_dataset();
        let us_index = ds.countries.iter().position(|&c| c == "US").unwrap();
        for r in ds.records_in(us_index) {
            assert_eq!(r.do53_source, Do53Source::RipeAtlasRemedy);
            assert!(r.do53_ms.is_none());
        }
        assert!(ds.atlas_median_ms(us_index).is_some());
        // 11 remedy countries, all covered by Atlas samples.
        assert_eq!(ds.atlas_do53_ms.len(), 11);
    }

    #[test]
    fn non_sp_countries_have_header_do53() {
        let ds = quick_dataset();
        let br_index = ds.countries.iter().position(|&c| c == "BR").unwrap();
        let mut count = 0;
        for r in ds.records_in(br_index) {
            assert_eq!(r.do53_source, Do53Source::BrightDataHeader);
            assert!(r.do53_ms.unwrap() > 0.0);
            count += 1;
        }
        assert!(count >= 1);
    }

    #[test]
    fn mismatch_discard_rate_is_small() {
        let ds = quick_dataset();
        let frac = ds.discard_fraction();
        assert!(frac < 0.05, "discard fraction {frac}");
        // All retained records agree.
        assert!(ds.records.iter().all(|r| r.countries_agree()));
    }

    #[test]
    fn derived_times_are_plausible() {
        let ds = quick_dataset();
        let mut bad = 0;
        for r in &ds.records {
            for s in &r.doh {
                // Derived values can be slightly negative under jitter but
                // should overwhelmingly be positive and sub-10s.
                if !(0.0..10_000.0).contains(&s.t_doh_ms) {
                    bad += 1;
                }
                assert!(s.t_dohr_ms < s.t_doh_ms + 50.0);
            }
        }
        let frac = bad as f64 / (ds.records.len() * 4) as f64;
        assert!(frac < 0.01, "implausible fraction {frac}");
    }

    #[test]
    fn dohr_is_faster_than_doh1_in_aggregate() {
        let ds = quick_dataset();
        let mut doh: Vec<f64> = Vec::new();
        let mut dohr: Vec<f64> = Vec::new();
        for r in &ds.records {
            if let Some(s) = r.sample(ProviderKind::Cloudflare) {
                doh.push(s.t_doh_ms);
                dohr.push(s.t_dohr_ms);
            }
        }
        let med = |xs: &mut Vec<f64>| {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs[xs.len() / 2]
        };
        assert!(med(&mut dohr) < med(&mut doh));
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = Campaign::new(CampaignConfig::quick(7)).run();
        let b = Campaign::new(CampaignConfig::quick(7)).run();
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.client_id, rb.client_id);
            assert_eq!(ra.doh[0].t_doh_ms, rb.doh[0].t_doh_ms);
        }
    }

    #[test]
    fn store_run_reproduces_the_in_memory_dataset() {
        let config = CampaignConfig {
            scale: 0.02,
            ..CampaignConfig::quick(11)
        };
        let direct = Campaign::new(config).run();
        let dir =
            std::env::temp_dir().join(format!("dohperf-campaign-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let summary = Campaign::new(config).run_to_store(&dir, 64).unwrap();
        assert_eq!(summary.stats.records as usize, direct.records.len());
        assert_eq!(summary.discarded, direct.discarded_mismatches);
        assert!(summary.stats.chunks > 0);
        let back = crate::store_io::read_dataset(&dir).unwrap();
        assert_eq!(back.records, direct.records);
        assert_eq!(back.countries, direct.countries);
        assert_eq!(back.atlas_do53_ms, direct.atlas_do53_ms);
        assert_eq!(back.observed_ases, direct.observed_ases);
        assert_eq!(back.observed_resolvers, direct.observed_resolvers);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_sampling_never_perturbs_the_dataset() {
        let config = CampaignConfig {
            scale: 0.02,
            ..CampaignConfig::quick(7)
        };
        let plain = Campaign::new(config).run();
        let traced_campaign = Campaign::new(config).with_trace_sampling(4);
        let traced = traced_campaign.run();
        assert_eq!(plain.records, traced.records, "tracing must be invisible");
        let traces = traced_campaign.take_traces();
        assert!(!traces.is_empty(), "1-in-4 sampling should catch clients");
        assert!(
            traces.windows(2).all(|w| w[0].client_id < w[1].client_id),
            "traces drain in canonical client order"
        );
        for trace in &traces {
            let root = trace.root();
            assert!(root.name.starts_with("client "), "{}", root.name);
            assert!(
                trace.spans.iter().any(|s| s.target == "proxy"),
                "proxy spans recorded"
            );
        }
    }

    #[test]
    fn explain_client_replays_the_full_campaign_record() {
        let config = CampaignConfig {
            scale: 0.02,
            ..CampaignConfig::quick(11)
        };
        let ds = Campaign::new(config).run();
        let target = &ds.records[3];
        let explain = Campaign::explain_client(config, target.client_id).unwrap();
        assert!(explain.retained);
        // Bit-for-bit: the replayed shard derives the same RNG lineage.
        assert_eq!(explain.record, *target);
        assert_eq!(explain.trace.client_id, target.client_id);
        assert!(
            explain
                .trace
                .spans
                .iter()
                .any(|s| s.name == "derive Eq 1-8"),
            "derivation spans present"
        );
        // Out-of-range ids are rejected, not mis-attributed.
        assert!(Campaign::explain_client(config, u64::MAX).is_none());
    }

    #[test]
    fn pageload_never_perturbs_legacy_or_transport_samples() {
        // The DESIGN.md §15 fork-discipline contract, stacked on §13's:
        // enabling the page-load workload must leave every legacy field
        // *and* every transports sample bit-identical, because the page
        // draws come only from fresh page-keyed forks taken after both
        // blocks, under the same simulator-RNG checkpoint discipline.
        let base = CampaignConfig {
            scale: 0.02,
            protocols: ProtocolSet::all(),
            ..CampaignConfig::quick(7)
        };
        let without = Campaign::new(base).run();
        let with = Campaign::new(CampaignConfig {
            pages_per_client: 2,
            ..base
        })
        .run();
        assert_eq!(without.records.len(), with.records.len());
        for (l, e) in without.records.iter().zip(&with.records) {
            assert_eq!(l.client_id, e.client_id);
            assert_eq!(l.doh, e.doh, "client {}", l.client_id);
            assert_eq!(l.do53_ms, e.do53_ms);
            assert_eq!(l.do53_source, e.do53_source);
            assert_eq!(l.transports, e.transports, "client {}", l.client_id);
            assert!(l.pages.is_empty());
            assert_eq!(e.pages.len(), 4 * ALL_PROVIDERS.len());
        }
        assert_eq!(without.atlas_do53_ms, with.atlas_do53_ms);
        assert_eq!(without.discarded_mismatches, with.discarded_mismatches);
    }

    #[test]
    fn page_samples_cover_every_pair_and_share_one_dag() {
        let ds = Campaign::new(CampaignConfig {
            scale: 0.02,
            pages_per_client: 3,
            ..CampaignConfig::quick(13)
        })
        .run();
        let mut warm_savings = 0usize;
        let mut warm_hits = 0u64;
        for record in &ds.records {
            assert_eq!(record.pages.len(), 4 * ALL_PROVIDERS.len());
            let first = &record.pages[0];
            for transport in DnsTransport::ALL {
                for &provider in ALL_PROVIDERS.iter() {
                    let s = record
                        .page_sample(transport, provider)
                        .unwrap_or_else(|| panic!("missing {transport:?} {provider:?} page"));
                    // All sixteen pairs replay the same client DAG, so
                    // the shape columns must agree exactly.
                    assert_eq!(s.domains, first.domains);
                    assert_eq!(s.unique_names, first.unique_names);
                    assert_eq!(s.depth, first.depth);
                    assert!((4..=32).contains(&s.domains));
                    assert!(s.unique_names <= s.domains);
                    assert!((1..=4).contains(&s.depth));
                    assert!(s.plt_cold_ms > 0.0, "{transport:?} cold PLT");
                    assert!(s.plt_warm_ms > 0.0, "{transport:?} warm PLT");
                    if s.plt_warm_ms < s.plt_cold_ms {
                        warm_savings += 1;
                    }
                    warm_hits += u64::from(s.warm_cache_hits);
                }
            }
        }
        let total = ds.records.len() * 4 * ALL_PROVIDERS.len();
        // Warm visits skip the handshake and mostly hit the cache; the
        // overwhelming majority must come out faster than cold.
        assert!(
            warm_savings * 10 >= total * 9,
            "only {warm_savings}/{total} pages were faster warm"
        );
        assert!(warm_hits > 0, "warm revisits should hit the stub cache");
    }

    #[test]
    fn pageload_campaign_round_trips_through_the_store() {
        let config = CampaignConfig {
            scale: 0.02,
            protocols: ProtocolSet::all(),
            pages_per_client: 2,
            ..CampaignConfig::quick(11)
        };
        let direct = Campaign::new(config).run();
        let dir =
            std::env::temp_dir().join(format!("dohperf-campaign-pageload-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let summary = Campaign::new(config).run_to_store(&dir, 64).unwrap();
        assert_eq!(summary.stats.records as usize, direct.records.len());
        let back = crate::store_io::read_dataset(&dir).unwrap();
        assert_eq!(back.records, direct.records);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pageload_store_bytes_are_invariant_across_threads_and_shard_sizes() {
        // The per-client epoch discipline extends to the event-driven
        // page visits: every page event drains inside its client's
        // epoch, so the merged store stays a pure function of the seed.
        let base = CampaignConfig {
            scale: 0.02,
            pages_per_client: 2,
            ..CampaignConfig::quick(11)
        };
        let run = |shard_size: usize, threads: usize, tag: &str| {
            let dir = std::env::temp_dir().join(format!(
                "dohperf-campaign-pageshard-{}-{tag}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let config = CampaignConfig {
                shard_size,
                threads,
                ..base
            };
            Campaign::new(config).run_to_store(&dir, 16).unwrap();
            let records = std::fs::read(dir.join(RECORDS_FILE)).unwrap();
            let manifest = std::fs::read(dir.join(MANIFEST_FILE)).unwrap();
            std::fs::remove_dir_all(&dir).unwrap();
            (records, manifest)
        };
        let reference = run(usize::MAX, 1, "ref");
        for (shard_size, threads, tag) in [(8usize, 3usize, "s8t3"), (1, 2, "s1t2")] {
            let got = run(shard_size, threads, tag);
            assert_eq!(reference.0, got.0, "records bytes, shard_size {shard_size}");
            assert_eq!(
                reference.1, got.1,
                "manifest bytes, shard_size {shard_size}"
            );
        }
    }

    #[test]
    fn explain_replays_a_page_timeline() {
        let config = CampaignConfig {
            scale: 0.02,
            pages_per_client: 2,
            ..CampaignConfig::quick(11)
        };
        let ds = Campaign::new(config).run();
        let target = &ds.records[1];
        let explain = Campaign::explain_client(config, target.client_id).unwrap();
        assert_eq!(explain.record, *target);
        let spans = &explain.trace.spans;
        let pages = spans
            .iter()
            .filter(|s| s.target == "pageload" && s.name.starts_with("page "))
            .count();
        assert_eq!(pages, 4 * ALL_PROVIDERS.len(), "one page span per pair");
        let visits = spans
            .iter()
            .filter(|s| s.target == "pageload" && s.name.starts_with("visit "))
            .count();
        assert_eq!(visits, 2 * 4 * ALL_PROVIDERS.len(), "cold + warm per pair");
        let resolves: Vec<_> = spans
            .iter()
            .filter(|s| s.target == "pageload" && s.name.starts_with("resolve "))
            .collect();
        let per_pair = target.pages[0].domains as usize;
        assert_eq!(
            resolves.len(),
            2 * per_pair * 4 * ALL_PROVIDERS.len(),
            "every node of every visit leaves a resolve span"
        );
        assert!(
            resolves
                .iter()
                .any(|s| s.attrs.iter().any(|(k, v)| k == &"cache" && v == "hit")),
            "warm revisit resolves should include cache hits"
        );
    }

    #[test]
    fn protocol_set_parses_and_iterates_canonically() {
        let set = ProtocolSet::parse_list("doq,dot").unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.contains(DnsTransport::DoT));
        assert!(set.contains(DnsTransport::DoQ));
        assert!(!set.contains(DnsTransport::Do53));
        // Iteration order is canonical regardless of parse order.
        let order: Vec<_> = set.iter().collect();
        assert_eq!(order, vec![DnsTransport::DoT, DnsTransport::DoQ]);
        assert_eq!(ProtocolSet::all().len(), 4);
        assert!(ProtocolSet::parse_list("").unwrap().is_empty());
        let err = ProtocolSet::parse_list("do53,dohh").unwrap_err();
        assert!(err.contains("unknown protocol \"dohh\""), "{err}");
        assert!(err.contains("do53, doh, dot, doq"), "{err}");
    }

    #[test]
    fn extended_campaign_measures_every_transport_provider_pair() {
        let config = CampaignConfig {
            scale: 0.02,
            protocols: ProtocolSet::all(),
            ..CampaignConfig::quick(13)
        };
        let ds = Campaign::new(config).run();
        assert!(!ds.records.is_empty());
        for r in &ds.records {
            assert_eq!(r.transports.len(), 4 * ALL_PROVIDERS.len());
            for transport in DnsTransport::ALL {
                for provider in ALL_PROVIDERS {
                    let s = r.transport_sample(transport, provider).unwrap();
                    assert!(s.cold_ms > 0.0, "{transport:?} {provider:?}");
                    assert!(s.warm_ms > 0.0);
                    assert!(s.resumed_ms > 0.0);
                    // The cold path pays at least the handshake on top of
                    // a warm-equivalent query.
                    assert!(
                        s.cold_ms >= s.handshake_ms,
                        "cold {} < handshake {}",
                        s.cold_ms,
                        s.handshake_ms
                    );
                    if transport == DnsTransport::Do53 {
                        assert_eq!(s.handshake_ms, 0.0, "Do53 is connectionless");
                    } else {
                        assert!(s.handshake_ms > 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn extended_protocols_never_perturb_the_legacy_samples() {
        // The DESIGN.md §13 fork-discipline contract: adding lifecycle
        // measurements must leave every legacy field bit-identical,
        // because the new draws come only from fresh protocol-keyed
        // forks taken after the legacy loops.
        let legacy = Campaign::new(CampaignConfig {
            scale: 0.02,
            ..CampaignConfig::quick(7)
        })
        .run();
        let extended = Campaign::new(CampaignConfig {
            scale: 0.02,
            protocols: ProtocolSet::all(),
            ..CampaignConfig::quick(7)
        })
        .run();
        assert_eq!(legacy.records.len(), extended.records.len());
        for (l, e) in legacy.records.iter().zip(&extended.records) {
            assert_eq!(l.client_id, e.client_id);
            assert_eq!(l.doh, e.doh, "client {}", l.client_id);
            assert_eq!(l.do53_ms, e.do53_ms);
            assert_eq!(l.do53_source, e.do53_source);
            assert!(l.transports.is_empty());
            assert_eq!(e.transports.len(), 4 * ALL_PROVIDERS.len());
        }
        assert_eq!(legacy.atlas_do53_ms, extended.atlas_do53_ms);
        assert_eq!(legacy.discarded_mismatches, extended.discarded_mismatches);
    }

    #[test]
    fn extended_campaign_round_trips_through_the_store() {
        let config = CampaignConfig {
            scale: 0.02,
            protocols: ProtocolSet::all(),
            ..CampaignConfig::quick(11)
        };
        let direct = Campaign::new(config).run();
        let dir = std::env::temp_dir().join(format!(
            "dohperf-campaign-transports-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let summary = Campaign::new(config).run_to_store(&dir, 64).unwrap();
        assert_eq!(summary.stats.records as usize, direct.records.len());
        let back = crate::store_io::read_dataset(&dir).unwrap();
        assert_eq!(back.records, direct.records);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn windowing_never_perturbs_legacy_or_extended_samples() {
        // The DESIGN.md §16 fork-discipline contract, stacked on §13 and
        // §15: enabling windowing must leave every other field
        // bit-identical, because the window slot is a fresh fork of the
        // client stream and every window sample is derived from
        // already-measured values.
        let base = CampaignConfig {
            scale: 0.02,
            protocols: ProtocolSet::all(),
            pages_per_client: 2,
            ..CampaignConfig::quick(7)
        };
        let without = Campaign::new(base).run();
        let with = Campaign::new(CampaignConfig {
            window_nanos: 3_600_000_000_000,
            ..base
        })
        .run();
        assert_eq!(without.records.len(), with.records.len());
        for (l, e) in without.records.iter().zip(&with.records) {
            assert_eq!(l.client_id, e.client_id);
            assert_eq!(l.doh, e.doh, "client {}", l.client_id);
            assert_eq!(l.do53_ms, e.do53_ms);
            assert_eq!(l.transports, e.transports, "client {}", l.client_id);
            assert_eq!(l.pages, e.pages, "client {}", l.client_id);
            assert!(l.windows.is_empty());
            // Every legacy-DoH, lifecycle, and page block contributes
            // one sample, all sharing the client's one window.
            assert_eq!(
                e.windows.len(),
                e.doh.len() + e.transports.len() + e.pages.len()
            );
            assert!(e.windows.iter().all(|w| w.window == e.windows[0].window));
            assert!(e.windows.iter().all(|w| (w.window as u64) < 24));
            assert!(e.windows.iter().all(|w| w.availability() == 1.0));
        }
        assert_eq!(without.atlas_do53_ms, with.atlas_do53_ms);
        assert_eq!(without.discarded_mismatches, with.discarded_mismatches);
    }

    #[test]
    fn windowed_campaign_round_trips_through_the_store() {
        let config = CampaignConfig {
            scale: 0.02,
            protocols: ProtocolSet::all(),
            window_nanos: 3_600_000_000_000,
            ..CampaignConfig::quick(11)
        };
        let direct = Campaign::new(config).run();
        let dir =
            std::env::temp_dir().join(format!("dohperf-campaign-windows-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let summary = Campaign::new(config).run_to_store(&dir, 64).unwrap();
        assert_eq!(summary.stats.records as usize, direct.records.len());
        let back = crate::store_io::read_dataset(&dir).unwrap();
        assert_eq!(back.records, direct.records);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn windowed_store_bytes_are_invariant_across_threads_and_shard_sizes() {
        // The §16 determinism contract: the windowed column group rides
        // the same offset-anchored chunk discipline as every other
        // group, so the merged store stays a pure function of the seed.
        let base = CampaignConfig {
            scale: 0.02,
            window_nanos: 3_600_000_000_000,
            ..CampaignConfig::quick(11)
        };
        let run = |shard_size: usize, threads: usize, tag: &str| {
            let dir = std::env::temp_dir().join(format!(
                "dohperf-campaign-windowshard-{}-{tag}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let config = CampaignConfig {
                shard_size,
                threads,
                ..base
            };
            Campaign::new(config).run_to_store(&dir, 16).unwrap();
            let records = std::fs::read(dir.join(RECORDS_FILE)).unwrap();
            let manifest = std::fs::read(dir.join(MANIFEST_FILE)).unwrap();
            std::fs::remove_dir_all(&dir).unwrap();
            (records, manifest)
        };
        let reference = run(usize::MAX, 1, "ref");
        for (shard_size, threads, tag) in [(8usize, 3usize, "s8t3"), (1, 2, "s1t2")] {
            let got = run(shard_size, threads, tag);
            assert_eq!(reference.0, got.0, "records bytes, shard_size {shard_size}");
            assert_eq!(
                reference.1, got.1,
                "manifest bytes, shard_size {shard_size}"
            );
        }
    }

    #[test]
    fn shard_ranges_partition_every_country_in_order() {
        let campaign = Campaign::new(CampaignConfig::quick(5));
        let plan = campaign.plan();
        for granularity in [1, 7, 256, usize::MAX] {
            let shards = shard_ranges(&plan, granularity);
            let mut expected_country = 0usize;
            let mut expected_start = 0usize;
            for spec in &shards {
                if spec.country != expected_country {
                    assert_eq!(expected_start, plan.counts[expected_country]);
                    expected_country = spec.country;
                    expected_start = 0;
                }
                assert_eq!(spec.start, expected_start, "granularity {granularity}");
                assert!(spec.end > spec.start);
                assert!(spec.end - spec.start <= granularity);
                assert!(spec.end <= plan.counts[spec.country]);
                expected_start = spec.end;
            }
            assert_eq!(expected_country, plan.counts.len() - 1);
            assert_eq!(expected_start, plan.counts[expected_country]);
        }
    }

    #[test]
    fn shard_size_zero_means_default() {
        assert_eq!(
            CampaignConfig::default().effective_shard_size(),
            DEFAULT_SHARD_SIZE
        );
        let cfg = CampaignConfig {
            shard_size: 7,
            ..CampaignConfig::default()
        };
        assert_eq!(cfg.effective_shard_size(), 7);
    }

    #[test]
    fn shard_size_is_invisible_to_the_dataset() {
        // The tentpole contract: shard size (like thread count) is a
        // throughput knob, never an output knob. A per-country reference
        // (shard_size large enough that no country splits) must match any
        // split granularity bit-for-bit, traces and Atlas included.
        let base = CampaignConfig {
            scale: 0.02,
            ..CampaignConfig::quick(7)
        };
        let reference = Campaign::new(CampaignConfig {
            shard_size: usize::MAX,
            threads: 1,
            ..base
        })
        .run();
        for shard_size in [1usize, 3, 256] {
            let ds = Campaign::new(CampaignConfig {
                shard_size,
                threads: 3,
                ..base
            })
            .run();
            assert_eq!(reference.records, ds.records, "shard_size {shard_size}");
            assert_eq!(reference.atlas_do53_ms, ds.atlas_do53_ms);
            assert_eq!(reference.discarded_mismatches, ds.discarded_mismatches);
        }
    }

    #[test]
    fn store_bytes_are_invariant_across_threads_and_shard_sizes() {
        // Offset-anchored chunk boundaries plus budget-aligned range
        // granularity make the merged store a pure function of the seed:
        // identical bytes for any (threads, shard_size).
        let base = CampaignConfig {
            scale: 0.02,
            ..CampaignConfig::quick(11)
        };
        let run = |shard_size: usize, threads: usize, tag: &str| {
            let dir = std::env::temp_dir().join(format!(
                "dohperf-campaign-shardstore-{}-{tag}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let config = CampaignConfig {
                shard_size,
                threads,
                ..base
            };
            Campaign::new(config).run_to_store(&dir, 16).unwrap();
            let records = std::fs::read(dir.join(RECORDS_FILE)).unwrap();
            let manifest = std::fs::read(dir.join(MANIFEST_FILE)).unwrap();
            std::fs::remove_dir_all(&dir).unwrap();
            (records, manifest)
        };
        let reference = run(usize::MAX, 1, "ref");
        for (shard_size, threads, tag) in [(8usize, 3usize, "s8t3"), (1, 2, "s1t2")] {
            let got = run(shard_size, threads, tag);
            assert_eq!(reference.0, got.0, "records bytes, shard_size {shard_size}");
            assert_eq!(
                reference.1, got.1,
                "manifest bytes, shard_size {shard_size}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "scale in (0,1]")]
    fn zero_scale_rejected() {
        Campaign::new(CampaignConfig {
            scale: 0.0,
            ..CampaignConfig::default()
        });
    }
}
