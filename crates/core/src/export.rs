//! Dataset export.
//!
//! The paper releases its dataset for further research; this module writes
//! the campaign's records in two interchange formats:
//!
//! * **CSV** — one row per (client, provider) observation, flat columns,
//!   ready for pandas/R;
//! * **JSON Lines** — one JSON object per client via `serde`, preserving
//!   the nested structure.
//!
//! As in the paper, no client addresses are exported — only /24 prefixes.

use crate::records::{ClientRecord, Dataset};
use std::fmt::Write as _;

/// CSV header for the per-observation export.
pub const CSV_HEADER: &str = "client_id,country,maxmind_country,prefix,lat,lon,ns_distance_miles,\
provider,t_doh_ms,t_dohr_ms,pop_index,pop_distance_miles,nearest_pop_distance_miles,\
do53_ms,do53_source";

/// Render the dataset as CSV (one row per client × provider).
pub fn to_csv(ds: &Dataset) -> String {
    let mut out = String::with_capacity(ds.records.len() * 4 * 120);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for record in &ds.records {
        for sample in &record.doh {
            append_csv_row(&mut out, record, sample);
        }
    }
    out
}

fn append_csv_row(out: &mut String, r: &ClientRecord, s: &crate::records::DohSample) {
    let do53 = r.do53_ms.map(|v| format!("{v:.3}")).unwrap_or_default();
    let source = match r.do53_source {
        crate::records::Do53Source::BrightDataHeader => "header",
        crate::records::Do53Source::RipeAtlasRemedy => "atlas",
    };
    let _ = writeln!(
        out,
        "{},{},{},{},{:.4},{:.4},{:.1},{},{:.3},{:.3},{},{:.1},{:.1},{},{}",
        r.client_id,
        r.country_iso,
        r.maxmind_country,
        r.prefix.to_cidr(),
        r.position.lat,
        r.position.lon,
        r.nameserver_distance_miles,
        s.provider.name(),
        s.t_doh_ms,
        s.t_dohr_ms,
        s.pop_index,
        s.pop_distance_miles,
        s.nearest_pop_distance_miles,
        do53,
        source,
    );
}

/// Render the dataset as JSON Lines (one client object per line).
///
/// Serialisation is via `serde` with a handwritten minimal JSON emitter
/// (the approved offline crate set has `serde` but not `serde_json`).
pub fn to_jsonl(ds: &Dataset) -> String {
    let mut out = String::with_capacity(ds.records.len() * 400);
    for r in &ds.records {
        let mut obj = JsonObject::new();
        obj.num("client_id", r.client_id as f64);
        obj.str("country", r.country_iso);
        obj.str("maxmind_country", r.maxmind_country);
        obj.str("prefix", &r.prefix.to_cidr());
        obj.num("lat", r.position.lat);
        obj.num("lon", r.position.lon);
        obj.num("ns_distance_miles", r.nameserver_distance_miles);
        match r.do53_ms {
            Some(v) => obj.num("do53_ms", v),
            None => obj.null("do53_ms"),
        }
        let providers: Vec<String> = r
            .doh
            .iter()
            .map(|s| {
                let mut p = JsonObject::new();
                p.str("provider", s.provider.name());
                p.num("t_doh_ms", s.t_doh_ms);
                p.num("t_dohr_ms", s.t_dohr_ms);
                p.num("pop_distance_miles", s.pop_distance_miles);
                p.num("nearest_pop_distance_miles", s.nearest_pop_distance_miles);
                p.finish()
            })
            .collect();
        obj.raw("doh", &format!("[{}]", providers.join(",")));
        out.push_str(&obj.finish());
        out.push('\n');
    }
    out
}

/// Tiny JSON object builder (strings are escaped minimally: the exported
/// fields are ISO codes, provider names and numbers, none of which contain
/// control characters).
struct JsonObject {
    fields: Vec<String>,
}

impl JsonObject {
    fn new() -> Self {
        JsonObject { fields: Vec::new() }
    }
    fn str(&mut self, key: &str, value: &str) {
        let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
        self.fields.push(format!("\"{key}\":\"{escaped}\""));
    }
    fn num(&mut self, key: &str, value: f64) {
        if value.is_finite() {
            self.fields.push(format!("\"{key}\":{value}"));
        } else {
            self.null(key);
        }
    }
    fn null(&mut self, key: &str) {
        self.fields.push(format!("\"{key}\":null"));
    }
    fn raw(&mut self, key: &str, value: &str) {
        self.fields.push(format!("\"{key}\":{value}"));
    }
    fn finish(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| {
            Campaign::new(CampaignConfig {
                scale: 0.02,
                ..CampaignConfig::quick(3)
            })
            .run()
        })
    }

    #[test]
    fn csv_has_header_and_four_rows_per_client() {
        let ds = dataset();
        let csv = to_csv(ds);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 1 + ds.records.len() * 4);
        // Every row has the same number of commas as the header.
        let commas = CSV_HEADER.matches(',').count();
        for line in &lines[1..] {
            assert_eq!(line.matches(',').count(), commas, "{line}");
        }
    }

    #[test]
    fn csv_never_exports_full_addresses() {
        let csv = to_csv(dataset());
        // Prefixes end in .0/24 — no full host addresses. Column 3 is
        // `prefix` (see CSV_HEADER); a row too short to have one is its
        // own failure, reported with the offending row for context.
        for (lineno, line) in csv.lines().enumerate().skip(1) {
            let Some(prefix) = line.split(',').nth(3) else {
                panic!("row {lineno} has no prefix column (expected ≥4 fields): {line:?}");
            };
            assert!(
                prefix.ends_with(".0/24"),
                "row {lineno}: prefix column {prefix:?} is not a /24 — \
                 a full client address may have leaked into the export"
            );
        }
    }

    #[test]
    fn jsonl_is_one_valid_object_per_client() {
        let ds = dataset();
        let jsonl = to_jsonl(ds);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), ds.records.len());
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            // Balanced braces and quotes (cheap structural check).
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "{line}"
            );
            assert_eq!(line.matches('"').count() % 2, 0);
            assert!(line.contains("\"doh\":["));
        }
    }

    #[test]
    fn atlas_clients_export_null_do53() {
        let ds = dataset();
        let jsonl = to_jsonl(ds);
        let has_null = jsonl.lines().any(|l| l.contains("\"do53_ms\":null"));
        let has_value = jsonl
            .lines()
            .any(|l| l.contains("\"do53_ms\":") && !l.contains("\"do53_ms\":null"));
        assert!(has_null, "Super Proxy countries must export null Do53");
        assert!(has_value, "other countries must export numeric Do53");
    }
}
