//! The offset-scan compression in `WireWriter` must be byte-for-byte
//! identical to the suffix-string `HashMap` bookkeeping it replaced: same
//! pointer targets, same pointer positions, same label bytes. These tests
//! pit the new writer against a straight port of the old implementation
//! over adversarial name sequences (shared suffixes, repeated names,
//! maximum-length labels, interleaved fixed-width fields).

use dohperf_dns::error::DnsError;
use dohperf_dns::wire::WireWriter;
use proptest::prelude::*;
use std::collections::HashMap;

/// Verbatim port of the pre-interning writer: suffixes keyed by their
/// dotted lowercase string, first-encoded offset wins.
#[derive(Default)]
struct ReferenceWriter {
    buf: Vec<u8>,
    compression: HashMap<String, u16>,
}

impl ReferenceWriter {
    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_name(&mut self, labels: &[String]) -> Result<(), DnsError> {
        for start in 0..labels.len() {
            let suffix = labels[start..].join(".");
            if let Some(&offset) = self.compression.get(&suffix) {
                self.put_u16(0xC000 | offset);
                return Ok(());
            }
            let here = self.buf.len();
            if here <= 0x3FFF {
                self.compression.insert(suffix, here as u16);
            }
            let bytes = labels[start].as_bytes();
            if bytes.len() > 63 {
                return Err(DnsError::LabelTooLong(bytes.len()));
            }
            self.buf.push(bytes.len() as u8);
            self.buf.extend_from_slice(bytes);
        }
        self.buf.push(0);
        Ok(())
    }
}

/// Labels drawn from a two-letter alphabet so generated names share
/// suffixes constantly — the worst case for compression bookkeeping.
fn arb_colliding_label() -> impl Strategy<Value = String> {
    prop_oneof![
        proptest::string::string_regex("[ab]{1,3}").unwrap(),
        // Maximum-length labels exercise the 63-byte boundary.
        Just("x".repeat(63)),
    ]
}

fn arb_names() -> impl Strategy<Value = Vec<Vec<String>>> {
    proptest::collection::vec(
        proptest::collection::vec(arb_colliding_label(), 1..5),
        1..12,
    )
}

/// Encode the same name sequence through both writers, interleaving a
/// fixed-width field between names (as real messages do with TYPE/CLASS)
/// so pointer offsets are non-trivial.
fn encode_both(names: &[Vec<String>]) -> (Vec<u8>, Vec<u8>) {
    let mut new = WireWriter::new();
    let mut old = ReferenceWriter::default();
    for (i, name) in names.iter().enumerate() {
        new.put_name(name).unwrap();
        old.put_name(name).unwrap();
        let filler = i as u16;
        new.put_u16(filler);
        old.put_u16(filler);
    }
    (new.finish().unwrap(), old.buf)
}

proptest! {
    /// Arbitrary suffix-heavy name sequences encode identically, pointers
    /// and all.
    #[test]
    fn offset_scan_matches_hashmap_reference(names in arb_names()) {
        let (new, old) = encode_both(&names);
        prop_assert_eq!(new, old);
    }
}

#[test]
fn repeated_and_nested_suffixes_match() {
    let cases: Vec<Vec<Vec<&str>>> = vec![
        // Identical names -> second is a lone pointer.
        vec![vec!["example", "com"], vec!["example", "com"]],
        // Sibling hosts share the parent suffix.
        vec![vec!["a", "example", "com"], vec!["b", "example", "com"]],
        // A name whose labels repeat ("a.a.a") must not self-compress.
        vec![vec!["a", "a", "a"], vec!["a", "a"], vec!["a"]],
        // Deep chains: each name extends the previous one.
        vec![
            vec!["com"],
            vec!["example", "com"],
            vec!["www", "example", "com"],
            vec!["cdn", "www", "example", "com"],
        ],
    ];
    for case in cases {
        let owned: Vec<Vec<String>> = case
            .iter()
            .map(|n| n.iter().map(|l| l.to_string()).collect())
            .collect();
        let (new, old) = encode_both(&owned);
        assert_eq!(new, old, "case {case:?}");
    }
}

#[test]
fn max_length_labels_compress_identically() {
    let long = "z".repeat(63);
    let names = vec![
        vec![long.clone(), "com".to_string()],
        vec!["www".to_string(), long.clone(), "com".to_string()],
        vec![long.clone(), "com".to_string()],
    ];
    let (new, old) = encode_both(&names);
    assert_eq!(new, old);
}
