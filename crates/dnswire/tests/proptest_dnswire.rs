//! Property-based tests: encode/decode roundtrips over arbitrary inputs and
//! decoder robustness against fuzz bytes.

use dohperf_dns::base64url;
use dohperf_dns::prelude::*;
use dohperf_dns::rdata::SoaData;
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

/// A valid DNS label: 1-15 LDH characters.
fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,13}[a-z0-9])?").unwrap()
}

fn arb_name() -> impl Strategy<Value = DnsName> {
    proptest::collection::vec(arb_label(), 1..6)
        .prop_map(|labels| DnsName::parse(&labels.join(".")).expect("generated labels are valid"))
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(Ipv6Addr::from(o))),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
        (any::<u16>(), arb_name()).prop_map(|(p, n)| RData::Mx(p, n)),
        proptest::collection::vec("[ -~]{0,40}", 0..4).prop_map(RData::Txt),
        (
            arb_name(),
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(m, r, s, re, rt, e, mi)| RData::Soa(SoaData {
                mname: m,
                rname: r,
                serial: s,
                refresh: re,
                retry: rt,
                expire: e,
                minimum: mi,
            })),
    ]
}

fn arb_record() -> impl Strategy<Value = ResourceRecord> {
    (arb_name(), any::<u32>(), arb_rdata())
        .prop_map(|(name, ttl, rdata)| ResourceRecord::new(name, ttl, rdata))
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_name(),
        proptest::collection::vec(arb_record(), 0..5),
        proptest::collection::vec(arb_record(), 0..3),
        proptest::collection::vec(arb_record(), 0..3),
    )
        .prop_map(|(id, qname, answers, authorities, additionals)| {
            let mut m = Message::query(id, qname, RecordType::A);
            m.answers = answers;
            m.authorities = authorities;
            m.additionals = additionals;
            m
        })
}

proptest! {
    /// Names written then read come back identical (lowercased already).
    #[test]
    fn name_roundtrip(name in arb_name()) {
        let q = Message::query(1, name.clone(), RecordType::A);
        let buf = q.encode().unwrap();
        let d = Message::decode(&buf).unwrap();
        prop_assert_eq!(&d.questions[0].qname, &name);
    }

    /// Full messages roundtrip through the wire format.
    #[test]
    fn message_roundtrip(msg in arb_message()) {
        let buf = msg.encode().unwrap();
        let d = Message::decode(&buf).unwrap();
        prop_assert_eq!(d.questions, msg.questions);
        prop_assert_eq!(d.answers, msg.answers);
        prop_assert_eq!(d.authorities, msg.authorities);
        prop_assert_eq!(d.additionals, msg.additionals);
    }

    /// Compression never changes semantics: a message with many records
    /// under one zone decodes to the same records.
    #[test]
    fn compression_is_transparent(
        zone in arb_name(),
        hosts in proptest::collection::vec(arb_label(), 1..8),
        ttl in any::<u32>(),
    ) {
        let mut msg = Message::query(9, zone.clone(), RecordType::A);
        for h in &hosts {
            if let Ok(name) = zone.prepend(h) {
                msg.answers.push(ResourceRecord::new(name, ttl, RData::A(Ipv4Addr::new(10, 0, 0, 1))));
            }
        }
        let buf = msg.encode().unwrap();
        let d = Message::decode(&buf).unwrap();
        prop_assert_eq!(d.answers, msg.answers);
    }

    /// The decoder never panics on arbitrary bytes — it returns an error or
    /// a message, but must not crash.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    /// base64url roundtrips all inputs.
    #[test]
    fn base64url_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let enc = base64url::encode(&bytes);
        prop_assert!(enc.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_'));
        prop_assert_eq!(base64url::decode(&enc).unwrap(), bytes);
    }

    /// base64url decode never panics on arbitrary ASCII.
    #[test]
    fn base64url_decode_never_panics(s in "[ -~]{0,64}") {
        let _ = base64url::decode(&s);
    }

    /// DoH GET and POST both recover the original question.
    #[test]
    fn doh_roundtrip(name in arb_name(), id in any::<u16>()) {
        let msg = Message::query(id, name, RecordType::A);
        let get = DohRequest::get(&msg).unwrap();
        prop_assert_eq!(&get.decode_message().unwrap().questions, &msg.questions);
        let post = DohRequest::post(&msg).unwrap();
        let back = post.decode_message().unwrap();
        prop_assert_eq!(&back.questions, &msg.questions);
        prop_assert_eq!(back.header.id, id);
    }

    /// Cache entries honour TTL boundaries exactly.
    #[test]
    fn cache_ttl_boundary(now in 0u64..1_000_000, ttl in 1u32..86_400) {
        let mut cache = DnsCache::new();
        let k = CacheKey { name: DnsName::parse("a.com").unwrap(), rtype: RecordType::A };
        let rr = ResourceRecord::new(DnsName::parse("a.com").unwrap(), ttl, RData::A(Ipv4Addr::new(1, 2, 3, 4)));
        cache.insert(k.clone(), vec![rr], now, ttl);
        prop_assert!(cache.get(&k, now + u64::from(ttl) - 1).is_some());
        prop_assert!(cache.get(&k, now + u64::from(ttl)).is_none());
    }
}
