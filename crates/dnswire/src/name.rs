//! Domain names.
//!
//! [`DnsName`] stores a validated, lowercase label sequence. Comparison is
//! case-insensitive per RFC 1035 §2.3.3 (achieved by normalising at
//! construction). Hostname validation follows the LDH rule with underscores
//! additionally permitted (service labels like `_dns` appear in the wild).

use crate::error::DnsError;
use crate::intern::{self, Label};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Maximum total encoded length of a name (RFC 1035 §3.1).
pub const MAX_NAME_LEN: usize = 255;
/// Maximum length of a single label.
pub const MAX_LABEL_LEN: usize = 63;

/// A validated, normalised (lowercase) domain name.
///
/// Labels are interned handles (see [`crate::intern`]): cloning a name
/// copies a vector of thin pointers, and no label string is ever
/// re-allocated. Comparison, ordering, and hashing go through the label
/// *content*, so behaviour is identical to the `Vec<String>`
/// representation this replaced.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DnsName {
    labels: Vec<Label>,
}

impl DnsName {
    /// The root name (empty label sequence).
    pub fn root() -> Self {
        DnsName { labels: Vec::new() }
    }

    /// Parse a dotted name. A single trailing dot (FQDN form) is accepted
    /// and ignored. The empty string and `"."` denote the root.
    pub fn parse(s: &str) -> Result<Self, DnsError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(DnsName::root());
        }
        let mut labels = Vec::new();
        for raw in s.split('.') {
            labels.push(Self::validate_label(raw)?);
        }
        let name = DnsName { labels };
        let encoded = name.encoded_len();
        if encoded > MAX_NAME_LEN {
            return Err(DnsError::NameTooLong(encoded));
        }
        Ok(name)
    }

    /// Build from pre-validated lowercase labels (used by the wire reader,
    /// which already enforces length limits).
    pub(crate) fn from_labels_unchecked(labels: Vec<Label>) -> Self {
        DnsName { labels }
    }

    /// Validate and intern one label. The charset check guarantees ASCII,
    /// so lowercasing happens on a stack buffer — no allocation unless
    /// the label has never been seen before.
    fn validate_label(raw: &str) -> Result<Label, DnsError> {
        if raw.is_empty() {
            return Err(DnsError::EmptyLabel);
        }
        if raw.len() > MAX_LABEL_LEN {
            return Err(DnsError::LabelTooLong(raw.len()));
        }
        let ok = raw
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_');
        if !ok {
            return Err(DnsError::InvalidLabel(raw.to_string()));
        }
        Ok(intern::intern_bytes_lossy_lower(raw.as_bytes()))
    }

    /// The labels, most-specific first.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Number of labels (0 for the root).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Total wire-encoded length (sum of length octets and label bytes plus
    /// the terminating root octet).
    pub fn encoded_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// Prepend a label, returning a new child name (`child.prepend("www")`).
    pub fn prepend(&self, label: &str) -> Result<DnsName, DnsError> {
        let validated = Self::validate_label(label)?;
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(validated);
        labels.extend(self.labels.iter().cloned());
        let name = DnsName { labels };
        let encoded = name.encoded_len();
        if encoded > MAX_NAME_LEN {
            return Err(DnsError::NameTooLong(encoded));
        }
        Ok(name)
    }

    /// The parent name (everything after the first label); root's parent is
    /// root.
    pub fn parent(&self) -> DnsName {
        if self.labels.is_empty() {
            DnsName::root()
        } else {
            DnsName {
                labels: self.labels[1..].to_vec(),
            }
        }
    }

    /// True if `self` equals `other` or is a subdomain of it. Every name is
    /// under the root.
    pub fn is_subdomain_of(&self, other: &DnsName) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..] == other.labels[..]
    }
}

impl fmt::Display for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            write!(f, ".")
        } else {
            for (i, label) in self.labels.iter().enumerate() {
                if i > 0 {
                    f.write_str(".")?;
                }
                f.write_str(label.as_str())?;
            }
            Ok(())
        }
    }
}

impl FromStr for DnsName {
    type Err = DnsError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DnsName::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n = DnsName::parse("WWW.Example.COM").unwrap();
        assert_eq!(n.to_string(), "www.example.com");
        assert_eq!(n.label_count(), 3);
    }

    #[test]
    fn trailing_dot_accepted() {
        assert_eq!(
            DnsName::parse("example.com.").unwrap(),
            DnsName::parse("example.com").unwrap()
        );
    }

    #[test]
    fn root_forms() {
        assert!(DnsName::parse("").unwrap().is_root());
        assert!(DnsName::parse(".").unwrap().is_root());
        assert_eq!(DnsName::root().to_string(), ".");
        assert_eq!(DnsName::root().encoded_len(), 1);
    }

    #[test]
    fn case_insensitive_equality() {
        assert_eq!(
            DnsName::parse("A.B.C").unwrap(),
            DnsName::parse("a.b.c").unwrap()
        );
    }

    #[test]
    fn invalid_labels_rejected() {
        assert!(DnsName::parse("exa mple.com").is_err());
        assert!(DnsName::parse("exa*mple.com").is_err());
        assert!(DnsName::parse("a..b").is_err());
        assert!(DnsName::parse(&format!("{}.com", "x".repeat(64))).is_err());
    }

    #[test]
    fn underscore_and_hyphen_permitted() {
        assert!(DnsName::parse("_dns.resolver.arpa").is_ok());
        assert!(DnsName::parse("my-host.example.com").is_ok());
    }

    #[test]
    fn overlong_name_rejected() {
        // 5 chars per label incl. dot -> 60 labels is 300 > 255.
        let long = vec!["abcd"; 60].join(".");
        assert!(matches!(
            DnsName::parse(&long),
            Err(DnsError::NameTooLong(_))
        ));
    }

    #[test]
    fn prepend_builds_subdomain() {
        let base = DnsName::parse("a.com").unwrap();
        let sub = base.prepend("uuid1234").unwrap();
        assert_eq!(sub.to_string(), "uuid1234.a.com");
        assert!(sub.is_subdomain_of(&base));
        assert!(!base.is_subdomain_of(&sub));
    }

    #[test]
    fn parent_walks_up() {
        let n = DnsName::parse("a.b.c").unwrap();
        assert_eq!(n.parent().to_string(), "b.c");
        assert_eq!(n.parent().parent().to_string(), "c");
        assert!(n.parent().parent().parent().is_root());
        assert!(DnsName::root().parent().is_root());
    }

    #[test]
    fn subdomain_relation() {
        let root = DnsName::root();
        let com = DnsName::parse("com").unwrap();
        let ex = DnsName::parse("example.com").unwrap();
        assert!(ex.is_subdomain_of(&com));
        assert!(ex.is_subdomain_of(&root));
        assert!(ex.is_subdomain_of(&ex));
        assert!(!com.is_subdomain_of(&ex));
        // Same suffix labels but not aligned: bexample.com is not under example.com.
        let similar = DnsName::parse("bexample.com").unwrap();
        assert!(!similar.is_subdomain_of(&ex));
    }

    #[test]
    fn encoded_len_matches_wire() {
        let n = DnsName::parse("www.example.com").unwrap();
        // 3www 7example 3com 0 -> 4+8+4+1 = 17
        assert_eq!(n.encoded_len(), 17);
    }

    #[test]
    fn fromstr_works() {
        let n: DnsName = "example.org".parse().unwrap();
        assert_eq!(n.label_count(), 2);
    }
}
