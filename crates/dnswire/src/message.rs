//! Full DNS messages.

use crate::error::DnsError;
use crate::header::Header;
use crate::name::DnsName;
use crate::pool::PooledBuf;
use crate::rdata::RData;
use crate::record::{Question, ResourceRecord};
use crate::types::{RCode, RecordType};
use crate::wire::{WireReader, WireWriter};
use bytes::BytesMut;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Conventional maximum UDP payload without EDNS (RFC 1035 §4.2.1).
pub const CLASSIC_UDP_LIMIT: usize = 512;

/// A complete DNS message: header plus four sections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Message header. Section counts are recomputed at encode time.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<ResourceRecord>,
    /// Authority section.
    pub authorities: Vec<ResourceRecord>,
    /// Additional section.
    pub additionals: Vec<ResourceRecord>,
}

impl Message {
    /// Build a standard recursive query for `name`/`rtype`. The name is
    /// taken by value — callers that still need theirs clone explicitly,
    /// and hot paths hand over an interned name with no copy at all.
    pub fn query(id: u16, name: DnsName, rtype: RecordType) -> Self {
        let mut header = Header::new_query(id);
        header.qdcount = 1;
        Message {
            header,
            questions: vec![Question::new(name, rtype)],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Build a response to `query` with the given answers. The question
    /// section is echoed per convention.
    pub fn response(query: &Message, rcode: RCode, answers: Vec<ResourceRecord>) -> Self {
        let header = Header::new_response(&query.header, rcode);
        Message {
            header,
            questions: query.questions.clone(),
            answers,
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Shorthand: an A-record answer to `query`'s first question.
    pub fn answer_a(query: &Message, ip: Ipv4Addr, ttl: u32) -> Self {
        let name = query
            .questions
            .first()
            .map(|q| q.qname.clone())
            .unwrap_or_else(DnsName::root);
        Message::response(
            query,
            RCode::NoError,
            vec![ResourceRecord::new(name, ttl, RData::A(ip))],
        )
    }

    /// The first question, if present.
    pub fn first_question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// First A answer, if any.
    pub fn first_a(&self) -> Option<Ipv4Addr> {
        self.answers.iter().find_map(|rr| match rr.rdata {
            RData::A(ip) => Some(ip),
            _ => None,
        })
    }

    /// Encode the message, recomputing section counts.
    pub fn encode(&self) -> Result<Vec<u8>, DnsError> {
        let mut w = WireWriter::new();
        self.encode_with(&mut w)?;
        w.finish()
    }

    /// Encode into a caller-provided buffer, reusing its capacity. The
    /// buffer is cleared first and holds exactly the encoded message on
    /// return; on error its contents are unspecified.
    pub fn encode_into(&self, buf: &mut BytesMut) -> Result<(), DnsError> {
        let mut w = WireWriter::with_buf(std::mem::take(buf));
        self.encode_with(&mut w)?;
        *buf = w.into_buf()?;
        Ok(())
    }

    /// Encode into a per-thread pooled buffer (see [`crate::pool`]); the
    /// buffer recycles when the returned handle drops.
    pub fn encode_pooled(&self) -> Result<PooledBuf, DnsError> {
        let mut w = WireWriter::pooled();
        self.encode_with(&mut w)?;
        w.finish_pooled()
    }

    fn encode_with(&self, w: &mut WireWriter) -> Result<(), DnsError> {
        let mut header = self.header;
        header.qdcount = u16::try_from(self.questions.len())
            .map_err(|_| DnsError::MessageTooLong(self.questions.len()))?;
        header.ancount = u16::try_from(self.answers.len())
            .map_err(|_| DnsError::MessageTooLong(self.answers.len()))?;
        header.nscount = u16::try_from(self.authorities.len())
            .map_err(|_| DnsError::MessageTooLong(self.authorities.len()))?;
        header.arcount = u16::try_from(self.additionals.len())
            .map_err(|_| DnsError::MessageTooLong(self.additionals.len()))?;
        header.encode(w);
        for q in &self.questions {
            q.encode(w)?;
        }
        for rr in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            rr.encode(w)?;
        }
        Ok(())
    }

    /// Decode a complete message.
    pub fn decode(buf: &[u8]) -> Result<Self, DnsError> {
        let decoded = Self::decode_inner(buf);
        if decoded.is_err() {
            dohperf_telemetry::counter!("dnswire.parse_failures").inc();
        }
        decoded
    }

    fn decode_inner(buf: &[u8]) -> Result<Self, DnsError> {
        let mut r = WireReader::new(buf);
        let header = Header::decode(&mut r)?;
        let mut questions = Vec::with_capacity(header.qdcount as usize);
        for _ in 0..header.qdcount {
            questions.push(Question::decode(&mut r)?);
        }
        let mut read_section = |count: u16| -> Result<Vec<ResourceRecord>, DnsError> {
            let mut v = Vec::with_capacity(count as usize);
            for _ in 0..count {
                v.push(ResourceRecord::decode(&mut r)?);
            }
            Ok(v)
        };
        let answers = read_section(header.ancount)?;
        let authorities = read_section(header.nscount)?;
        let additionals = read_section(header.arcount)?;
        Ok(Message {
            header,
            questions,
            answers,
            authorities,
            additionals,
        })
    }

    /// Wire size when encoded.
    pub fn encoded_len(&self) -> Result<usize, DnsError> {
        Ok(self.encode()?.len())
    }

    /// Encode for a size-limited transport (classic UDP): if the full
    /// message exceeds `limit`, drop answer/authority/additional records
    /// until it fits and set the TC bit, signalling the client to retry
    /// over TCP (RFC 1035 §4.2.1 / RFC 2181 §9).
    pub fn encode_bounded(&self, limit: usize) -> Result<Vec<u8>, DnsError> {
        let full = self.encode()?;
        if full.len() <= limit {
            return Ok(full);
        }
        let mut truncated = self.clone();
        truncated.header.flags.tc = true;
        // Drop additionals, then authorities, then answers from the back.
        while truncated.encoded_len()? > limit {
            if truncated.additionals.pop().is_some() {
                continue;
            }
            if truncated.authorities.pop().is_some() {
                continue;
            }
            if truncated.answers.pop().is_some() {
                continue;
            }
            // Nothing left to drop: the question alone exceeds the limit.
            return Err(DnsError::MessageTooLong(truncated.encoded_len()?));
        }
        truncated.encode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> Message {
        Message::query(
            0x4242,
            DnsName::parse("e4b1c2d3.a.com").unwrap(),
            RecordType::A,
        )
    }

    #[test]
    fn encode_into_and_pooled_match_encode() {
        let q = sample_query();
        let plain = q.encode().unwrap();
        let mut buf = bytes::BytesMut::new();
        q.encode_into(&mut buf).unwrap();
        assert_eq!(&buf[..], &plain[..]);
        // Reuse the same buffer for a different message.
        let resp = Message::answer_a(&q, Ipv4Addr::new(5, 6, 7, 8), 60);
        resp.encode_into(&mut buf).unwrap();
        assert_eq!(&buf[..], &resp.encode().unwrap()[..]);
        let pooled = q.encode_pooled().unwrap();
        assert_eq!(&pooled[..], &plain[..]);
    }

    #[test]
    fn query_roundtrip() {
        let q = sample_query();
        let buf = q.encode().unwrap();
        let d = Message::decode(&buf).unwrap();
        assert_eq!(d.header.id, 0x4242);
        assert_eq!(d.questions, q.questions);
        assert!(d.answers.is_empty());
        assert!(!d.header.flags.qr);
    }

    #[test]
    fn response_roundtrip_with_all_sections() {
        let q = sample_query();
        let mut resp = Message::answer_a(&q, Ipv4Addr::new(203, 0, 113, 9), 300);
        resp.authorities.push(ResourceRecord::new(
            DnsName::parse("a.com").unwrap(),
            3600,
            RData::Ns(DnsName::parse("ns1.a.com").unwrap()),
        ));
        resp.additionals.push(ResourceRecord::new(
            DnsName::parse("ns1.a.com").unwrap(),
            3600,
            RData::A(Ipv4Addr::new(198, 51, 100, 1)),
        ));
        let buf = resp.encode().unwrap();
        let d = Message::decode(&buf).unwrap();
        assert_eq!(d.header.ancount, 1);
        assert_eq!(d.header.nscount, 1);
        assert_eq!(d.header.arcount, 1);
        assert_eq!(d.answers, resp.answers);
        assert_eq!(d.authorities, resp.authorities);
        assert_eq!(d.additionals, resp.additionals);
        assert_eq!(d.first_a(), Some(Ipv4Addr::new(203, 0, 113, 9)));
    }

    #[test]
    fn counts_recomputed_on_encode() {
        let mut q = sample_query();
        q.header.qdcount = 99; // wrong on purpose
        let buf = q.encode().unwrap();
        let d = Message::decode(&buf).unwrap();
        assert_eq!(d.header.qdcount, 1);
    }

    #[test]
    fn compression_shrinks_response() {
        let q = sample_query();
        let resp = Message::answer_a(&q, Ipv4Addr::new(1, 2, 3, 4), 300);
        let buf = resp.encode().unwrap();
        // Without compression the owner name would repeat (16 bytes); with
        // compression it is a 2-byte pointer.
        let q_len = q.encode().unwrap().len();
        assert!(buf.len() < q_len + 2 + 2 + 2 + 4 + 2 + 4 + 10);
    }

    #[test]
    fn classic_udp_query_fits() {
        let q = sample_query();
        assert!(q.encoded_len().unwrap() <= CLASSIC_UDP_LIMIT);
    }

    #[test]
    fn decode_rejects_truncation_at_every_cut() {
        let q = sample_query();
        let resp = Message::answer_a(&q, Ipv4Addr::new(9, 9, 9, 9), 60);
        let buf = resp.encode().unwrap();
        for cut in 0..buf.len() {
            assert!(Message::decode(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn encode_bounded_passes_small_messages_untouched() {
        let q = sample_query();
        let bounded = q.encode_bounded(512).unwrap();
        assert_eq!(bounded, q.encode().unwrap());
        let decoded = Message::decode(&bounded).unwrap();
        assert!(!decoded.header.flags.tc);
    }

    #[test]
    fn encode_bounded_truncates_and_sets_tc() {
        let q = sample_query();
        let mut resp = Message::answer_a(&q, Ipv4Addr::new(1, 1, 1, 1), 300);
        for i in 0..40 {
            resp.answers.push(ResourceRecord::new(
                DnsName::parse(&format!("r{i}.a.com")).unwrap(),
                60,
                RData::A(Ipv4Addr::new(10, 0, 0, i as u8)),
            ));
        }
        let full_len = resp.encoded_len().unwrap();
        assert!(full_len > 512);
        let bounded = resp.encode_bounded(512).unwrap();
        assert!(bounded.len() <= 512, "{}", bounded.len());
        let decoded = Message::decode(&bounded).unwrap();
        assert!(decoded.header.flags.tc, "TC bit must be set");
        assert!(decoded.answers.len() < 41);
        assert_eq!(decoded.questions, resp.questions);
    }

    #[test]
    fn encode_bounded_impossible_limit_errors() {
        let q = sample_query();
        assert!(matches!(
            q.encode_bounded(10),
            Err(DnsError::MessageTooLong(_))
        ));
    }

    #[test]
    fn answer_a_echoes_question_name() {
        let q = sample_query();
        let resp = Message::answer_a(&q, Ipv4Addr::new(7, 7, 7, 7), 1);
        assert_eq!(resp.answers[0].name, q.questions[0].qname);
        assert_eq!(resp.questions, q.questions);
        assert!(resp.header.flags.qr);
    }
}
