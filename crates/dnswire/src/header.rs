//! The 12-octet DNS message header (RFC 1035 §4.1.1).

use crate::error::DnsError;
use crate::types::{Opcode, RCode};
use crate::wire::{WireReader, WireWriter};
use serde::{Deserialize, Serialize};

/// The flag bits of the header's second 16-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HeaderFlags {
    /// Query (false) / response (true).
    pub qr: bool,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated (response exceeded transport size).
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Authentic data (DNSSEC, RFC 4035).
    pub ad: bool,
    /// Checking disabled (DNSSEC).
    pub cd: bool,
}

/// A decoded header with section counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Header {
    /// Transaction id.
    pub id: u16,
    /// Flag bits.
    pub flags: HeaderFlags,
    /// Operation code.
    pub opcode: Opcode,
    /// Response code.
    pub rcode: RCode,
    /// Question count.
    pub qdcount: u16,
    /// Answer count.
    pub ancount: u16,
    /// Authority count.
    pub nscount: u16,
    /// Additional count.
    pub arcount: u16,
}

impl Header {
    /// A recursive query header.
    pub fn new_query(id: u16) -> Self {
        Header {
            id,
            flags: HeaderFlags {
                rd: true,
                ..HeaderFlags::default()
            },
            opcode: Opcode::Query,
            rcode: RCode::NoError,
            qdcount: 0,
            ancount: 0,
            nscount: 0,
            arcount: 0,
        }
    }

    /// A response header answering a query: copies id/opcode/rd, sets qr/ra.
    pub fn new_response(query: &Header, rcode: RCode) -> Self {
        Header {
            id: query.id,
            flags: HeaderFlags {
                qr: true,
                rd: query.flags.rd,
                ra: true,
                ..HeaderFlags::default()
            },
            opcode: query.opcode,
            rcode,
            qdcount: 0,
            ancount: 0,
            nscount: 0,
            arcount: 0,
        }
    }

    /// Encode the 12 octets.
    pub fn encode(&self, w: &mut WireWriter) {
        w.put_u16(self.id);
        let mut word: u16 = 0;
        if self.flags.qr {
            word |= 1 << 15;
        }
        word |= (self.opcode.to_u8() as u16 & 0x0F) << 11;
        if self.flags.aa {
            word |= 1 << 10;
        }
        if self.flags.tc {
            word |= 1 << 9;
        }
        if self.flags.rd {
            word |= 1 << 8;
        }
        if self.flags.ra {
            word |= 1 << 7;
        }
        if self.flags.ad {
            word |= 1 << 5;
        }
        if self.flags.cd {
            word |= 1 << 4;
        }
        word |= self.rcode.to_u8() as u16 & 0x0F;
        w.put_u16(word);
        w.put_u16(self.qdcount);
        w.put_u16(self.ancount);
        w.put_u16(self.nscount);
        w.put_u16(self.arcount);
    }

    /// Decode 12 octets from the reader.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, DnsError> {
        let id = r.get_u16()?;
        let word = r.get_u16()?;
        let flags = HeaderFlags {
            qr: word & (1 << 15) != 0,
            aa: word & (1 << 10) != 0,
            tc: word & (1 << 9) != 0,
            rd: word & (1 << 8) != 0,
            ra: word & (1 << 7) != 0,
            ad: word & (1 << 5) != 0,
            cd: word & (1 << 4) != 0,
        };
        let opcode = Opcode::from_u8(((word >> 11) & 0x0F) as u8);
        let rcode = RCode::from_u8((word & 0x0F) as u8);
        Ok(Header {
            id,
            flags,
            opcode,
            rcode,
            qdcount: r.get_u16()?,
            ancount: r.get_u16()?,
            nscount: r.get_u16()?,
            arcount: r.get_u16()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(h: Header) -> Header {
        let mut w = WireWriter::new();
        h.encode(&mut w);
        let buf = w.finish().unwrap();
        assert_eq!(buf.len(), 12);
        Header::decode(&mut WireReader::new(&buf)).unwrap()
    }

    #[test]
    fn query_header_roundtrip() {
        let h = Header::new_query(0xABCD);
        let d = roundtrip(h);
        assert_eq!(d, h);
        assert!(d.flags.rd);
        assert!(!d.flags.qr);
    }

    #[test]
    fn response_header_copies_identity() {
        let q = Header::new_query(42);
        let r = Header::new_response(&q, RCode::NxDomain);
        assert_eq!(r.id, 42);
        assert!(r.flags.qr);
        assert!(r.flags.ra);
        assert!(r.flags.rd);
        assert_eq!(r.rcode, RCode::NxDomain);
        let d = roundtrip(r);
        assert_eq!(d, r);
    }

    #[test]
    fn all_flags_roundtrip() {
        let mut h = Header::new_query(7);
        h.flags = HeaderFlags {
            qr: true,
            aa: true,
            tc: true,
            rd: true,
            ra: true,
            ad: true,
            cd: true,
        };
        h.rcode = RCode::Refused;
        h.qdcount = 1;
        h.ancount = 2;
        h.nscount = 3;
        h.arcount = 4;
        assert_eq!(roundtrip(h), h);
    }

    #[test]
    fn truncated_header_errors() {
        let buf = [0u8; 11];
        assert!(Header::decode(&mut WireReader::new(&buf)).is_err());
    }

    #[test]
    fn known_wire_bytes() {
        // id=1, RD query with one question.
        let mut h = Header::new_query(1);
        h.qdcount = 1;
        let mut w = WireWriter::new();
        h.encode(&mut w);
        let buf = w.finish().unwrap();
        assert_eq!(buf, vec![0, 1, 0x01, 0x00, 0, 1, 0, 0, 0, 0, 0, 0]);
    }
}
