//! EDNS(0) — RFC 6891.
//!
//! The OPT pseudo-record rides in the additional section and carries the
//! requester's UDP payload size, an extended RCODE, and a version field,
//! all packed into the owner/class/TTL fields of a normal RR. Every
//! modern resolver (and all four DoH providers) negotiates EDNS, so the
//! wire implementation supports it even though the simulated measurements
//! only need vanilla queries.

use crate::error::DnsError;
use crate::message::Message;
use crate::name::DnsName;
use crate::rdata::RData;
use crate::record::ResourceRecord;
use crate::types::{RecordClass, RecordType};
use serde::{Deserialize, Serialize};

/// Default EDNS buffer size advertised by this implementation (a common
/// middle ground that avoids fragmentation).
pub const DEFAULT_UDP_PAYLOAD_SIZE: u16 = 1232;

/// Decoded EDNS parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdnsOptions {
    /// Requester's maximum UDP payload size (lives in the CLASS field).
    pub udp_payload_size: u16,
    /// Upper 8 bits of the extended RCODE (TTL byte 0).
    pub extended_rcode: u8,
    /// EDNS version (TTL byte 1); only version 0 exists.
    pub version: u8,
    /// The DO bit — DNSSEC OK (TTL bit 15 of the lower half).
    pub dnssec_ok: bool,
}

impl Default for EdnsOptions {
    fn default() -> Self {
        EdnsOptions {
            udp_payload_size: DEFAULT_UDP_PAYLOAD_SIZE,
            extended_rcode: 0,
            version: 0,
            dnssec_ok: false,
        }
    }
}

impl EdnsOptions {
    /// Render as an OPT resource record.
    pub fn to_record(&self) -> ResourceRecord {
        let mut ttl: u32 = (self.extended_rcode as u32) << 24;
        ttl |= (self.version as u32) << 16;
        if self.dnssec_ok {
            ttl |= 1 << 15;
        }
        ResourceRecord {
            name: DnsName::root(),
            rtype: RecordType::Opt,
            rclass: RecordClass::Unknown(self.udp_payload_size),
            ttl,
            rdata: RData::Unknown(Vec::new()),
        }
    }

    /// Parse from an OPT record. Rejects non-OPT records and non-zero
    /// EDNS versions (RFC 6891 §6.1.3 requires BADVERS handling, which
    /// the caller implements).
    pub fn from_record(rr: &ResourceRecord) -> Result<EdnsOptions, DnsError> {
        if rr.rtype != RecordType::Opt {
            return Err(DnsError::UnsupportedValue(
                "OPT rtype",
                rr.rtype.to_u16() as u32,
            ));
        }
        let version = ((rr.ttl >> 16) & 0xFF) as u8;
        if version != 0 {
            return Err(DnsError::UnsupportedValue("EDNS version", version as u32));
        }
        Ok(EdnsOptions {
            udp_payload_size: rr.rclass.to_u16(),
            extended_rcode: ((rr.ttl >> 24) & 0xFF) as u8,
            version,
            dnssec_ok: rr.ttl & (1 << 15) != 0,
        })
    }
}

/// Attach EDNS to a query (idempotent: replaces any existing OPT).
pub fn add_edns(message: &mut Message, options: EdnsOptions) {
    message.additionals.retain(|rr| rr.rtype != RecordType::Opt);
    message.additionals.push(options.to_record());
}

/// Extract EDNS options from a message, if present.
pub fn edns_of(message: &Message) -> Option<Result<EdnsOptions, DnsError>> {
    message
        .additionals
        .iter()
        .find(|rr| rr.rtype == RecordType::Opt)
        .map(EdnsOptions::from_record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RecordType as RT;

    #[test]
    fn edns_roundtrips_through_the_wire() {
        let mut q = Message::query(1, DnsName::parse("x.a.com").unwrap(), RT::A);
        add_edns(
            &mut q,
            EdnsOptions {
                udp_payload_size: 4096,
                extended_rcode: 0,
                version: 0,
                dnssec_ok: true,
            },
        );
        let wire = q.encode().unwrap();
        let decoded = Message::decode(&wire).unwrap();
        let opts = edns_of(&decoded).expect("OPT present").unwrap();
        assert_eq!(opts.udp_payload_size, 4096);
        assert!(opts.dnssec_ok);
        assert_eq!(opts.version, 0);
    }

    #[test]
    fn add_edns_is_idempotent() {
        let mut q = Message::query(2, DnsName::parse("x.a.com").unwrap(), RT::A);
        add_edns(&mut q, EdnsOptions::default());
        add_edns(
            &mut q,
            EdnsOptions {
                udp_payload_size: 512,
                ..EdnsOptions::default()
            },
        );
        let opts: Vec<_> = q
            .additionals
            .iter()
            .filter(|rr| rr.rtype == RT::Opt)
            .collect();
        assert_eq!(opts.len(), 1);
        assert_eq!(edns_of(&q).unwrap().unwrap().udp_payload_size, 512);
    }

    #[test]
    fn missing_edns_is_none() {
        let q = Message::query(3, DnsName::parse("x.a.com").unwrap(), RT::A);
        assert!(edns_of(&q).is_none());
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut rr = EdnsOptions::default().to_record();
        rr.ttl |= 1 << 16; // version 1
        assert!(EdnsOptions::from_record(&rr).is_err());
    }

    #[test]
    fn non_opt_record_rejected() {
        let rr = ResourceRecord::new(
            DnsName::parse("a.com").unwrap(),
            60,
            RData::A(std::net::Ipv4Addr::new(1, 2, 3, 4)),
        );
        assert!(EdnsOptions::from_record(&rr).is_err());
    }

    #[test]
    fn extended_rcode_packs_into_ttl() {
        let opts = EdnsOptions {
            extended_rcode: 0xAB,
            ..EdnsOptions::default()
        };
        let rr = opts.to_record();
        assert_eq!((rr.ttl >> 24) & 0xFF, 0xAB);
        assert_eq!(EdnsOptions::from_record(&rr).unwrap().extended_rcode, 0xAB);
    }
}
