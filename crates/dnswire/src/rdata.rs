//! Typed RDATA payloads.

use crate::error::DnsError;
use crate::name::DnsName;
use crate::types::RecordType;
use crate::wire::{WireReader, WireWriter};
use serde::{Deserialize, Serialize};
use std::net::{Ipv4Addr, Ipv6Addr};

/// SOA record fields (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoaData {
    /// Primary name server.
    pub mname: DnsName,
    /// Responsible mailbox.
    pub rname: DnsName,
    /// Zone serial.
    pub serial: u32,
    /// Refresh interval, seconds.
    pub refresh: u32,
    /// Retry interval, seconds.
    pub retry: u32,
    /// Expire limit, seconds.
    pub expire: u32,
    /// Negative-caching TTL, seconds.
    pub minimum: u32,
}

/// A decoded RDATA payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Name server.
    Ns(DnsName),
    /// Canonical name.
    Cname(DnsName),
    /// Pointer.
    Ptr(DnsName),
    /// Mail exchange (preference, host).
    Mx(u16, DnsName),
    /// Text segments (each at most 255 octets).
    Txt(Vec<String>),
    /// Start of authority.
    Soa(SoaData),
    /// Opaque payload for unimplemented types.
    Unknown(Vec<u8>),
}

impl RData {
    /// The record type this payload corresponds to (Unknown maps to the
    /// caller-supplied type at the record layer).
    pub fn natural_type(&self) -> Option<RecordType> {
        match self {
            RData::A(_) => Some(RecordType::A),
            RData::Aaaa(_) => Some(RecordType::Aaaa),
            RData::Ns(_) => Some(RecordType::Ns),
            RData::Cname(_) => Some(RecordType::Cname),
            RData::Ptr(_) => Some(RecordType::Ptr),
            RData::Mx(_, _) => Some(RecordType::Mx),
            RData::Txt(_) => Some(RecordType::Txt),
            RData::Soa(_) => Some(RecordType::Soa),
            RData::Unknown(_) => None,
        }
    }

    /// Encode the payload (without the RDLENGTH prefix; the record layer
    /// back-patches that).
    ///
    /// Note: names inside RDATA are written *without* compression, matching
    /// RFC 3597's requirement for forward compatibility.
    pub fn encode(&self, w: &mut WireWriter) -> Result<(), DnsError> {
        match self {
            RData::A(ip) => w.put_slice(&ip.octets()),
            RData::Aaaa(ip) => w.put_slice(&ip.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => {
                encode_name_uncompressed(w, n)?;
            }
            RData::Mx(pref, n) => {
                w.put_u16(*pref);
                encode_name_uncompressed(w, n)?;
            }
            RData::Txt(segments) => {
                for seg in segments {
                    let bytes = seg.as_bytes();
                    if bytes.len() > 255 {
                        return Err(DnsError::TxtSegmentTooLong(bytes.len()));
                    }
                    w.put_u8(bytes.len() as u8);
                    w.put_slice(bytes);
                }
            }
            RData::Soa(soa) => {
                encode_name_uncompressed(w, &soa.mname)?;
                encode_name_uncompressed(w, &soa.rname)?;
                w.put_u32(soa.serial);
                w.put_u32(soa.refresh);
                w.put_u32(soa.retry);
                w.put_u32(soa.expire);
                w.put_u32(soa.minimum);
            }
            RData::Unknown(bytes) => w.put_slice(bytes),
        }
        Ok(())
    }

    /// Decode a payload of `len` octets of the given type. The reader must
    /// be positioned at the start of the RDATA.
    pub fn decode(r: &mut WireReader<'_>, rtype: RecordType, len: usize) -> Result<Self, DnsError> {
        let end = r.position() + len;
        let out = match rtype {
            RecordType::A => {
                let o = r.get_slice(4)?;
                RData::A(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
            }
            RecordType::Aaaa => {
                let o = r.get_slice(16)?;
                let mut a = [0u8; 16];
                a.copy_from_slice(o);
                RData::Aaaa(Ipv6Addr::from(a))
            }
            RecordType::Ns => RData::Ns(read_name(r)?),
            RecordType::Cname => RData::Cname(read_name(r)?),
            RecordType::Ptr => RData::Ptr(read_name(r)?),
            RecordType::Mx => {
                let pref = r.get_u16()?;
                RData::Mx(pref, read_name(r)?)
            }
            RecordType::Txt => {
                let mut segments = Vec::new();
                while r.position() < end {
                    let slen = r.get_u8()? as usize;
                    let bytes = r.get_slice(slen)?;
                    segments.push(String::from_utf8_lossy(bytes).into_owned());
                }
                RData::Txt(segments)
            }
            RecordType::Soa => {
                let mname = read_name(r)?;
                let rname = read_name(r)?;
                RData::Soa(SoaData {
                    mname,
                    rname,
                    serial: r.get_u32()?,
                    refresh: r.get_u32()?,
                    retry: r.get_u32()?,
                    expire: r.get_u32()?,
                    minimum: r.get_u32()?,
                })
            }
            _ => RData::Unknown(r.get_slice(len)?.to_vec()),
        };
        if r.position() != end {
            return Err(DnsError::RdataLengthMismatch {
                declared: len,
                actual: len - (end - r.position()),
            });
        }
        Ok(out)
    }
}

fn read_name(r: &mut WireReader<'_>) -> Result<DnsName, DnsError> {
    Ok(DnsName::from_labels_unchecked(r.get_name()?))
}

fn encode_name_uncompressed(w: &mut WireWriter, name: &DnsName) -> Result<(), DnsError> {
    for label in name.labels() {
        let bytes = label.as_bytes();
        if bytes.len() > 63 {
            return Err(DnsError::LabelTooLong(bytes.len()));
        }
        w.put_u8(bytes.len() as u8);
        w.put_slice(bytes);
    }
    w.put_u8(0);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rd: &RData, rtype: RecordType) -> RData {
        let mut w = WireWriter::new();
        rd.encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        RData::decode(&mut WireReader::new(&buf), rtype, buf.len()).unwrap()
    }

    #[test]
    fn a_record_roundtrip() {
        let rd = RData::A(Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(roundtrip(&rd, RecordType::A), rd);
    }

    #[test]
    fn aaaa_record_roundtrip() {
        let rd = RData::Aaaa("2001:db8::1".parse().unwrap());
        assert_eq!(roundtrip(&rd, RecordType::Aaaa), rd);
    }

    #[test]
    fn name_records_roundtrip() {
        let name = DnsName::parse("ns1.example.com").unwrap();
        for rd in [
            RData::Ns(name.clone()),
            RData::Cname(name.clone()),
            RData::Ptr(name.clone()),
        ] {
            let rtype = rd.natural_type().unwrap();
            assert_eq!(roundtrip(&rd, rtype), rd);
        }
    }

    #[test]
    fn mx_roundtrip() {
        let rd = RData::Mx(10, DnsName::parse("mail.example.com").unwrap());
        assert_eq!(roundtrip(&rd, RecordType::Mx), rd);
    }

    #[test]
    fn txt_roundtrip_multiple_segments() {
        let rd = RData::Txt(vec!["hello".into(), "world".into(), String::new()]);
        assert_eq!(roundtrip(&rd, RecordType::Txt), rd);
    }

    #[test]
    fn txt_segment_too_long_rejected() {
        let rd = RData::Txt(vec!["x".repeat(256)]);
        let mut w = WireWriter::new();
        assert!(matches!(
            rd.encode(&mut w),
            Err(DnsError::TxtSegmentTooLong(256))
        ));
    }

    #[test]
    fn soa_roundtrip() {
        let rd = RData::Soa(SoaData {
            mname: DnsName::parse("ns1.a.com").unwrap(),
            rname: DnsName::parse("hostmaster.a.com").unwrap(),
            serial: 20_210_501,
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: 300,
        });
        assert_eq!(roundtrip(&rd, RecordType::Soa), rd);
    }

    #[test]
    fn unknown_type_preserved_as_bytes() {
        let rd = RData::Unknown(vec![1, 2, 3, 4, 5]);
        assert_eq!(roundtrip(&rd, RecordType::Unknown(999)), rd);
    }

    #[test]
    fn declared_length_mismatch_detected() {
        // A record declared as 5 bytes.
        let buf = [192, 0, 2, 1, 99];
        let err = RData::decode(&mut WireReader::new(&buf), RecordType::A, 5);
        assert!(matches!(err, Err(DnsError::RdataLengthMismatch { .. })));
    }

    #[test]
    fn truncated_rdata_errors() {
        let buf = [192, 0];
        assert!(RData::decode(&mut WireReader::new(&buf), RecordType::A, 4).is_err());
    }
}
