//! A sans-I/O iterative resolution engine.
//!
//! Real recursive resolvers (the paper's ISP resolvers, and its BIND9
//! authoritative) walk the delegation tree: root → TLD → zone, chasing
//! CNAMEs and caching referrals. This module implements that walk as a
//! *driven state machine*: it never touches a socket. The caller asks for
//! the next step, performs the I/O however it likes (UDP in
//! `dohperf-livenet`, simulated exchanges in the campaign), and feeds the
//! response back.
//!
//! ```text
//! let mut r = IterativeResolver::new(roots);
//! let mut step = r.begin(name, RecordType::A, now)?;
//! loop {
//!     match step {
//!         Step::Query { server, question } => {
//!             let response = /* caller I/O */;
//!             step = r.advance(response, now)?;
//!         }
//!         Step::Answered(answer) => break,
//!     }
//! }
//! ```

use crate::cache::{CacheKey, DnsCache};
use crate::error::DnsError;
use crate::message::Message;
use crate::name::DnsName;
use crate::rdata::RData;
use crate::record::Question;
use crate::types::{RCode, RecordType};
use std::net::Ipv4Addr;

/// Safety bound on delegation hops (root → TLD → … ).
const MAX_REFERRALS: usize = 16;
/// Safety bound on CNAME chain length.
const MAX_CNAME_CHAIN: usize = 8;

/// The final outcome of a resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer {
    /// Addresses for the (possibly CNAME-rewritten) final name.
    Addresses(Vec<Ipv4Addr>),
    /// The name does not exist.
    NxDomain,
    /// The name exists but has no records of the queried type.
    NoData,
}

/// What the driver must do next.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Send `question` to `server` and feed the response to `advance`.
    Query {
        /// Name server to contact.
        server: Ipv4Addr,
        /// The question to pose.
        question: Question,
    },
    /// Resolution finished.
    Answered(Answer),
}

/// Errors specific to the resolution walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// Too many referrals (delegation loop or overly deep tree).
    ReferralLimit,
    /// CNAME chain too long or looping.
    CnameLimit,
    /// A server returned something unusable (lame delegation).
    LameDelegation(String),
    /// `advance` called without an outstanding query.
    NotWaiting,
    /// Wire-level problem in a response.
    Wire(DnsError),
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::ReferralLimit => write!(f, "referral limit exceeded"),
            ResolveError::CnameLimit => write!(f, "CNAME chain limit exceeded"),
            ResolveError::LameDelegation(s) => write!(f, "lame delegation: {s}"),
            ResolveError::NotWaiting => write!(f, "advance() without outstanding query"),
            ResolveError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// The driven iterative resolver.
///
/// ```
/// use dohperf_dns::prelude::*;
/// use dohperf_dns::resolver::{IterativeResolver, Step};
/// use std::net::Ipv4Addr;
///
/// let root = Ipv4Addr::new(198, 41, 0, 4);
/// let mut resolver = IterativeResolver::new(vec![root]);
/// let name = DnsName::parse("www.example.com").unwrap();
/// match resolver.begin(&name, RecordType::A, 0) {
///     Step::Query { server, question } => {
///         assert_eq!(server, root); // cold cache: start at the root
///         assert_eq!(question.qname, name);
///     }
///     Step::Answered(_) => unreachable!("cache is cold"),
/// }
/// ```
#[derive(Debug)]
pub struct IterativeResolver {
    cache: DnsCache,
    roots: Vec<Ipv4Addr>,
    state: State,
    referrals: usize,
    cnames: usize,
}

#[derive(Debug)]
enum State {
    Idle,
    Waiting {
        qname: DnsName,
        qtype: RecordType,
        server: Ipv4Addr,
    },
}

impl IterativeResolver {
    /// Create a resolver primed with root server addresses.
    pub fn new(roots: Vec<Ipv4Addr>) -> Self {
        assert!(!roots.is_empty(), "need at least one root server");
        IterativeResolver {
            cache: DnsCache::new(),
            roots,
            state: State::Idle,
            referrals: 0,
            cnames: 0,
        }
    }

    /// Access the internal cache (e.g. to inspect hit rates).
    pub fn cache(&self) -> &DnsCache {
        &self.cache
    }

    /// Begin resolving `name`/`rtype` at time `now` (seconds). Returns the
    /// first step — possibly `Answered` immediately on a cache hit.
    pub fn begin(&mut self, name: &DnsName, rtype: RecordType, now: u64) -> Step {
        self.referrals = 0;
        self.cnames = 0;
        // Positive cache hit?
        let key = CacheKey {
            name: name.clone(),
            rtype,
        };
        if let Some(records) = self.cache.get(&key, now) {
            let addrs: Vec<Ipv4Addr> = records
                .iter()
                .filter_map(|rr| match rr.rdata {
                    RData::A(ip) => Some(ip),
                    _ => None,
                })
                .collect();
            if !addrs.is_empty() {
                self.state = State::Idle;
                return Step::Answered(Answer::Addresses(addrs));
            }
        }
        let server = self.best_server_for(name, now);
        self.state = State::Waiting {
            qname: name.clone(),
            qtype: rtype,
            server,
        };
        Step::Query {
            server,
            question: Question::new(name.clone(), rtype),
        }
    }

    /// Feed the response to the outstanding query; returns the next step.
    pub fn advance(&mut self, response: &Message, now: u64) -> Result<Step, ResolveError> {
        let (qname, qtype, _server) = match &self.state {
            State::Waiting {
                qname,
                qtype,
                server,
            } => (qname.clone(), *qtype, *server),
            State::Idle => return Err(ResolveError::NotWaiting),
        };
        self.state = State::Idle;

        if response.header.rcode == RCode::NxDomain {
            return Ok(Step::Answered(Answer::NxDomain));
        }

        // 1. Direct answers (following CNAMEs within the answer section).
        let mut target = qname.clone();
        for _ in 0..MAX_CNAME_CHAIN {
            let addrs: Vec<Ipv4Addr> = response
                .answers
                .iter()
                .filter(|rr| rr.name == target && rr.rtype == qtype)
                .filter_map(|rr| match rr.rdata {
                    RData::A(ip) => Some(ip),
                    _ => None,
                })
                .collect();
            if !addrs.is_empty() {
                let records: Vec<_> = response
                    .answers
                    .iter()
                    .filter(|rr| rr.name == target && rr.rtype == qtype)
                    .cloned()
                    .collect();
                let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
                self.cache.insert(
                    CacheKey {
                        name: qname.clone(),
                        rtype: qtype,
                    },
                    records,
                    now,
                    ttl,
                );
                return Ok(Step::Answered(Answer::Addresses(addrs)));
            }
            // In-message CNAME?
            let cname = response.answers.iter().find_map(|rr| {
                if rr.name == target {
                    if let RData::Cname(ref c) = rr.rdata {
                        return Some(c.clone());
                    }
                }
                None
            });
            match cname {
                Some(next) => {
                    target = next;
                }
                None => break,
            }
        }

        // 2. Out-of-message CNAME: restart the walk at the new target.
        if target != qname {
            self.cnames += 1;
            if self.cnames > MAX_CNAME_CHAIN {
                return Err(ResolveError::CnameLimit);
            }
            let server = self.best_server_for(&target, now);
            self.state = State::Waiting {
                qname: target.clone(),
                qtype,
                server,
            };
            return Ok(Step::Query {
                server,
                question: Question::new(target, qtype),
            });
        }

        // 3. Referral: authority NS records plus glue.
        let mut referral_servers: Vec<Ipv4Addr> = Vec::new();
        let mut referral_zone: Option<DnsName> = None;
        for auth in &response.authorities {
            if let RData::Ns(ref ns_name) = auth.rdata {
                if !qname.is_subdomain_of(&auth.name) {
                    continue; // irrelevant delegation
                }
                referral_zone = Some(auth.name.clone());
                // Glue lookup in the additional section.
                for add in &response.additionals {
                    if add.name == *ns_name {
                        if let RData::A(ip) = add.rdata {
                            referral_servers.push(ip);
                        }
                    }
                }
                // Cache the NS records for future best-server choices.
                self.cache.insert(
                    CacheKey {
                        name: auth.name.clone(),
                        rtype: RecordType::Ns,
                    },
                    vec![auth.clone()],
                    now,
                    auth.ttl,
                );
            }
        }
        if !referral_servers.is_empty() {
            self.referrals += 1;
            if self.referrals > MAX_REFERRALS {
                return Err(ResolveError::ReferralLimit);
            }
            // Cache the glue under the zone name so best_server_for works.
            if let Some(zone) = referral_zone {
                let glue: Vec<_> = response
                    .additionals
                    .iter()
                    .filter(|rr| matches!(rr.rdata, RData::A(_)))
                    .cloned()
                    .collect();
                let ttl = glue.iter().map(|r| r.ttl).min().unwrap_or(0);
                self.cache.insert(
                    CacheKey {
                        name: zone,
                        rtype: RecordType::A,
                    },
                    glue,
                    now,
                    ttl,
                );
            }
            let server = referral_servers[0];
            self.state = State::Waiting {
                qname: qname.clone(),
                qtype,
                server,
            };
            return Ok(Step::Query {
                server,
                question: Question::new(qname, qtype),
            });
        }

        // 4. NOERROR with nothing useful.
        if response.header.rcode == RCode::NoError {
            return Ok(Step::Answered(Answer::NoData));
        }
        Err(ResolveError::LameDelegation(format!(
            "rcode {:?} with no answer, referral or cname",
            response.header.rcode
        )))
    }

    /// Pick the deepest cached delegation covering `name`, falling back to
    /// a root server.
    fn best_server_for(&mut self, name: &DnsName, now: u64) -> Ipv4Addr {
        let mut zone = name.clone();
        loop {
            let key = CacheKey {
                name: zone.clone(),
                rtype: RecordType::A,
            };
            if let Some(records) = self.cache.get(&key, now) {
                if let Some(ip) = records.iter().find_map(|rr| match rr.rdata {
                    RData::A(ip) => Some(ip),
                    _ => None,
                }) {
                    // Only use cached glue for *zones*, not the exact
                    // query name (that would be a positive answer, already
                    // handled in begin()).
                    if zone != *name {
                        return ip;
                    }
                }
            }
            if zone.is_root() {
                break;
            }
            zone = zone.parent();
        }
        self.roots[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ResourceRecord;

    const ROOT: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
    const TLD: Ipv4Addr = Ipv4Addr::new(192, 5, 6, 30);
    const AUTH: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 53);
    const WEB: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 80);

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    /// A scripted upstream: answers like a root, .com TLD, and a.com auth.
    fn scripted_response(server: Ipv4Addr, question: &Question) -> Message {
        let query = Message::query(1, question.qname.clone(), question.qtype);
        if server == ROOT {
            // Referral to .com with glue.
            let mut resp = Message::response(&query, RCode::NoError, Vec::new());
            resp.authorities.push(ResourceRecord::new(
                name("com"),
                86_400,
                RData::Ns(name("ns.tld")),
            ));
            resp.additionals
                .push(ResourceRecord::new(name("ns.tld"), 86_400, RData::A(TLD)));
            resp
        } else if server == TLD {
            let mut resp = Message::response(&query, RCode::NoError, Vec::new());
            resp.authorities.push(ResourceRecord::new(
                name("a.com"),
                3_600,
                RData::Ns(name("ns1.a.com")),
            ));
            resp.additionals.push(ResourceRecord::new(
                name("ns1.a.com"),
                3_600,
                RData::A(AUTH),
            ));
            resp
        } else if server == AUTH {
            if question.qname == name("missing.a.com") {
                Message::response(&query, RCode::NxDomain, Vec::new())
            } else if question.qname == name("alias.a.com") {
                // CNAME to www.a.com plus the target's A (in-message).
                let mut resp = Message::response(&query, RCode::NoError, Vec::new());
                resp.answers.push(ResourceRecord::new(
                    name("alias.a.com"),
                    60,
                    RData::Cname(name("www.a.com")),
                ));
                resp.answers
                    .push(ResourceRecord::new(name("www.a.com"), 60, RData::A(WEB)));
                resp
            } else {
                Message::answer_a(&query, WEB, 300)
            }
        } else {
            panic!("unexpected server {server}");
        }
    }

    fn drive(resolver: &mut IterativeResolver, qname: &str, now: u64) -> (Answer, Vec<Ipv4Addr>) {
        let mut servers = Vec::new();
        let mut step = resolver.begin(&name(qname), RecordType::A, now);
        for _ in 0..32 {
            match step {
                Step::Query {
                    server,
                    ref question,
                } => {
                    servers.push(server);
                    let resp = scripted_response(server, question);
                    step = resolver.advance(&resp, now).unwrap();
                }
                Step::Answered(answer) => return (answer, servers),
            }
        }
        panic!("resolution did not terminate");
    }

    #[test]
    fn cold_resolution_walks_root_tld_auth() {
        let mut r = IterativeResolver::new(vec![ROOT]);
        let (answer, servers) = drive(&mut r, "www.a.com", 0);
        assert_eq!(answer, Answer::Addresses(vec![WEB]));
        assert_eq!(servers, vec![ROOT, TLD, AUTH]);
    }

    #[test]
    fn warm_resolution_skips_the_walk_via_delegation_cache() {
        let mut r = IterativeResolver::new(vec![ROOT]);
        drive(&mut r, "first.a.com", 0);
        // Second query for a *different* name in the same zone: the cached
        // a.com glue lets us go straight to the authoritative.
        let (answer, servers) = drive(&mut r, "second.a.com", 1);
        assert_eq!(answer, Answer::Addresses(vec![WEB]));
        assert_eq!(servers, vec![AUTH], "should start at cached delegation");
    }

    #[test]
    fn positive_cache_hit_answers_without_io() {
        let mut r = IterativeResolver::new(vec![ROOT]);
        drive(&mut r, "www.a.com", 0);
        let step = r.begin(&name("www.a.com"), RecordType::A, 10);
        assert_eq!(step, Step::Answered(Answer::Addresses(vec![WEB])));
    }

    #[test]
    fn positive_cache_expires_with_ttl() {
        let mut r = IterativeResolver::new(vec![ROOT]);
        drive(&mut r, "www.a.com", 0);
        // TTL of the answer is 300s; at t=301 the cache must miss.
        let step = r.begin(&name("www.a.com"), RecordType::A, 301);
        assert!(matches!(step, Step::Query { .. }));
    }

    #[test]
    fn nxdomain_propagates() {
        let mut r = IterativeResolver::new(vec![ROOT]);
        let (answer, _) = drive(&mut r, "missing.a.com", 0);
        assert_eq!(answer, Answer::NxDomain);
    }

    #[test]
    fn in_message_cname_is_followed() {
        let mut r = IterativeResolver::new(vec![ROOT]);
        let (answer, _) = drive(&mut r, "alias.a.com", 0);
        assert_eq!(answer, Answer::Addresses(vec![WEB]));
    }

    #[test]
    fn advance_without_query_errors() {
        let mut r = IterativeResolver::new(vec![ROOT]);
        let q = Message::query(1, name("x.com"), RecordType::A);
        let resp = Message::answer_a(&q, WEB, 60);
        assert_eq!(r.advance(&resp, 0), Err(ResolveError::NotWaiting));
    }

    #[test]
    fn referral_loops_are_bounded() {
        // A malicious upstream that always refers to itself.
        let mut r = IterativeResolver::new(vec![ROOT]);
        let mut step = r.begin(&name("loop.evil"), RecordType::A, 0);
        let mut err = None;
        for _ in 0..64 {
            match step {
                Step::Query { ref question, .. } => {
                    let query = Message::query(1, question.qname.clone(), question.qtype);
                    let mut resp = Message::response(&query, RCode::NoError, Vec::new());
                    resp.authorities.push(ResourceRecord::new(
                        name("evil"),
                        60,
                        RData::Ns(name("ns.evil")),
                    ));
                    resp.additionals.push(ResourceRecord::new(
                        name("ns.evil"),
                        60,
                        RData::A(Ipv4Addr::new(10, 0, 0, 1)),
                    ));
                    match r.advance(&resp, 0) {
                        Ok(next) => step = next,
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    }
                }
                Step::Answered(_) => panic!("loop should not answer"),
            }
        }
        assert_eq!(err, Some(ResolveError::ReferralLimit));
    }

    #[test]
    fn nodata_for_empty_noerror() {
        let mut r = IterativeResolver::new(vec![ROOT]);
        let mut step = r.begin(&name("www.a.com"), RecordType::A, 0);
        // Feed a bare NOERROR immediately.
        if let Step::Query { ref question, .. } = step {
            let query = Message::query(1, question.qname.clone(), question.qtype);
            let resp = Message::response(&query, RCode::NoError, Vec::new());
            step = r.advance(&resp, 0).unwrap();
        }
        assert_eq!(step, Step::Answered(Answer::NoData));
    }
}
