//! RFC 1035 §5 master-file (zone file) parsing.
//!
//! Supports the subset the measurement substrate needs — the same kind of
//! zone the authors loaded into BIND9 for `a.com`:
//!
//! * `$ORIGIN` and `$TTL` directives;
//! * relative and absolute owner names, `@` for the origin;
//! * blank owner fields inheriting the previous owner;
//! * comments (`;` to end of line);
//! * record types A, AAAA, NS, CNAME, MX, TXT (quoted), SOA (single-line);
//! * per-record TTLs and class `IN` (optional).
//!
//! Unsupported (rejected loudly): multi-line parentheses, `$INCLUDE`,
//! non-IN classes.

use crate::name::DnsName;
use crate::rdata::{RData, SoaData};
use crate::record::ResourceRecord;
use std::net::{Ipv4Addr, Ipv6Addr};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneFileError {
    /// Line the error occurred on.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ZoneFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zone file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ZoneFileError {}

fn err(line: usize, message: impl Into<String>) -> ZoneFileError {
    ZoneFileError {
        line,
        message: message.into(),
    }
}

/// Parse a master file into resource records.
pub fn parse_zone(
    text: &str,
    default_origin: Option<&DnsName>,
) -> Result<Vec<ResourceRecord>, ZoneFileError> {
    let mut origin: Option<DnsName> = default_origin.cloned();
    let mut default_ttl: u32 = 3600;
    let mut previous_owner: Option<DnsName> = None;
    let mut records = Vec::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line);
        if line.trim().is_empty() {
            continue;
        }
        if line.contains('(') || line.contains(')') {
            return Err(err(lineno, "multi-line parentheses are not supported"));
        }
        // Directives.
        if let Some(rest) = line.trim_start().strip_prefix("$ORIGIN") {
            let name = rest.trim();
            origin = Some(
                DnsName::parse(name)
                    .map_err(|e| err(lineno, format!("bad $ORIGIN {name:?}: {e}")))?,
            );
            continue;
        }
        if let Some(rest) = line.trim_start().strip_prefix("$TTL") {
            default_ttl = rest
                .trim()
                .parse()
                .map_err(|_| err(lineno, format!("bad $TTL {:?}", rest.trim())))?;
            continue;
        }
        if line.trim_start().starts_with('$') {
            return Err(err(lineno, format!("unsupported directive in {line:?}")));
        }

        // Owner: present iff the line does not start with whitespace.
        let starts_indented = line.starts_with(' ') || line.starts_with('\t');
        let mut tokens = tokenize(line);
        if tokens.is_empty() {
            continue;
        }
        let owner = if starts_indented {
            previous_owner
                .clone()
                .ok_or_else(|| err(lineno, "indented record with no previous owner"))?
        } else {
            let tok = tokens.remove(0);
            resolve_name(&tok, origin.as_ref()).map_err(|e| err(lineno, e))?
        };
        previous_owner = Some(owner.clone());

        // Optional TTL and class, in either order.
        let mut ttl = default_ttl;
        loop {
            match tokens.first().map(|s| s.as_str()) {
                Some("IN") => {
                    tokens.remove(0);
                }
                Some(tok) if tok.chars().all(|c| c.is_ascii_digit()) => {
                    ttl = tok.parse().map_err(|_| err(lineno, "bad TTL"))?;
                    tokens.remove(0);
                }
                Some(tok) if ["CH", "HS", "CS"].contains(&tok) => {
                    return Err(err(lineno, format!("unsupported class {tok}")));
                }
                _ => break,
            }
        }

        let Some(rtype_tok) = tokens.first().cloned() else {
            return Err(err(lineno, "missing record type"));
        };
        tokens.remove(0);
        let rdata =
            parse_rdata(&rtype_tok, &tokens, origin.as_ref()).map_err(|e| err(lineno, e))?;
        records.push(ResourceRecord::new(owner, ttl, rdata));
    }
    Ok(records)
}

fn strip_comment(line: &str) -> &str {
    // A ';' inside a quoted string is content, not a comment.
    let mut in_quote = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quote = !in_quote,
            ';' if !in_quote => return &line[..i],
            _ => {}
        }
    }
    line
}

fn tokenize(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut in_quote = false;
    for c in line.chars() {
        match c {
            '"' => {
                in_quote = !in_quote;
                current.push(c);
            }
            c if c.is_whitespace() && !in_quote => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

fn resolve_name(token: &str, origin: Option<&DnsName>) -> Result<DnsName, String> {
    if token == "@" {
        return origin
            .cloned()
            .ok_or_else(|| "@ used with no $ORIGIN".to_string());
    }
    if let Some(stripped) = token.strip_suffix('.') {
        return DnsName::parse(stripped).map_err(|e| format!("bad name {token:?}: {e}"));
    }
    // Relative: append the origin.
    let origin = origin.ok_or_else(|| format!("relative name {token:?} with no $ORIGIN"))?;
    let mut full = token.to_string();
    if !origin.is_root() {
        full.push('.');
        full.push_str(&origin.to_string());
    }
    DnsName::parse(&full).map_err(|e| format!("bad name {token:?}: {e}"))
}

fn parse_rdata(rtype: &str, args: &[String], origin: Option<&DnsName>) -> Result<RData, String> {
    let need = |n: usize| -> Result<(), String> {
        if args.len() < n {
            Err(format!("{rtype} needs {n} field(s), got {}", args.len()))
        } else {
            Ok(())
        }
    };
    match rtype {
        "A" => {
            need(1)?;
            let ip: Ipv4Addr = args[0]
                .parse()
                .map_err(|_| format!("bad IPv4 {:?}", args[0]))?;
            Ok(RData::A(ip))
        }
        "AAAA" => {
            need(1)?;
            let ip: Ipv6Addr = args[0]
                .parse()
                .map_err(|_| format!("bad IPv6 {:?}", args[0]))?;
            Ok(RData::Aaaa(ip))
        }
        "NS" => {
            need(1)?;
            Ok(RData::Ns(resolve_name(&args[0], origin)?))
        }
        "CNAME" => {
            need(1)?;
            Ok(RData::Cname(resolve_name(&args[0], origin)?))
        }
        "PTR" => {
            need(1)?;
            Ok(RData::Ptr(resolve_name(&args[0], origin)?))
        }
        "MX" => {
            need(2)?;
            let pref: u16 = args[0]
                .parse()
                .map_err(|_| format!("bad MX preference {:?}", args[0]))?;
            Ok(RData::Mx(pref, resolve_name(&args[1], origin)?))
        }
        "TXT" => {
            need(1)?;
            let mut segments = Vec::new();
            for arg in args {
                let seg = arg
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or_else(|| format!("TXT segment {arg:?} must be quoted"))?;
                segments.push(seg.to_string());
            }
            Ok(RData::Txt(segments))
        }
        "SOA" => {
            need(7)?;
            let parse_u32 = |s: &str| -> Result<u32, String> {
                s.parse().map_err(|_| format!("bad SOA number {s:?}"))
            };
            Ok(RData::Soa(SoaData {
                mname: resolve_name(&args[0], origin)?,
                rname: resolve_name(&args[1], origin)?,
                serial: parse_u32(&args[2])?,
                refresh: parse_u32(&args[3])?,
                retry: parse_u32(&args[4])?,
                expire: parse_u32(&args[5])?,
                minimum: parse_u32(&args[6])?,
            }))
        }
        other => Err(format!("unsupported record type {other}")),
    }
}

/// Serialise records back to master-file text (round-trip support).
pub fn format_zone(records: &[ResourceRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for rr in records {
        let rdata = match &rr.rdata {
            RData::A(ip) => format!("A {ip}"),
            RData::Aaaa(ip) => format!("AAAA {ip}"),
            RData::Ns(n) => format!("NS {n}."),
            RData::Cname(n) => format!("CNAME {n}."),
            RData::Ptr(n) => format!("PTR {n}."),
            RData::Mx(p, n) => format!("MX {p} {n}."),
            RData::Txt(segs) => {
                let quoted: Vec<String> = segs.iter().map(|s| format!("\"{s}\"")).collect();
                format!("TXT {}", quoted.join(" "))
            }
            RData::Soa(soa) => format!(
                "SOA {}. {}. {} {} {} {} {}",
                soa.mname, soa.rname, soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum
            ),
            RData::Unknown(_) => continue,
        };
        let _ = writeln!(out, "{}. {} IN {}", rr.name, rr.ttl, rdata);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RecordType;

    const SAMPLE: &str = r#"
$ORIGIN a.com.
$TTL 300
@       IN SOA ns1 hostmaster 2021050101 7200 3600 1209600 300
@       IN NS  ns1
ns1     IN A   203.0.113.53    ; the authoritative server
www     600 IN A 203.0.113.80
        IN A   203.0.113.81    ; same owner as previous line
alias   IN CNAME www
mail    IN MX 10 mx1.mail.example.
txt     IN TXT "hello world" "second segment"
v6      IN AAAA 2001:db8::1
abs.example.net. IN A 192.0.2.7
"#;

    #[test]
    fn parses_the_sample_zone() {
        let records = parse_zone(SAMPLE, None).unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(records[0].rtype, RecordType::Soa);
        assert_eq!(records[0].name.to_string(), "a.com");
        // www has two A records, one with explicit TTL, one inheriting
        // the owner from the previous line.
        let www: Vec<_> = records
            .iter()
            .filter(|r| r.name.to_string() == "www.a.com")
            .collect();
        assert_eq!(www.len(), 2);
        assert_eq!(www[0].ttl, 600);
        assert_eq!(www[1].ttl, 300); // $TTL default
    }

    #[test]
    fn relative_and_absolute_names() {
        let records = parse_zone(SAMPLE, None).unwrap();
        assert!(records
            .iter()
            .any(|r| r.name.to_string() == "abs.example.net"));
        assert!(records.iter().any(|r| r.name.to_string() == "ns1.a.com"));
    }

    #[test]
    fn cname_target_resolved_against_origin() {
        let records = parse_zone(SAMPLE, None).unwrap();
        let alias = records
            .iter()
            .find(|r| r.name.to_string() == "alias.a.com")
            .unwrap();
        assert_eq!(
            alias.rdata,
            RData::Cname(DnsName::parse("www.a.com").unwrap())
        );
    }

    #[test]
    fn txt_segments_and_quoted_semicolons() {
        let zone = "$ORIGIN z.\nx IN TXT \"a;b\" ; trailing comment\n";
        let records = parse_zone(zone, None).unwrap();
        assert_eq!(records[0].rdata, RData::Txt(vec!["a;b".to_string()]));
    }

    #[test]
    fn soa_fields() {
        let records = parse_zone(SAMPLE, None).unwrap();
        if let RData::Soa(soa) = &records[0].rdata {
            assert_eq!(soa.serial, 2021050101);
            assert_eq!(soa.minimum, 300);
            assert_eq!(soa.mname.to_string(), "ns1.a.com");
        } else {
            panic!("first record must be SOA");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let zone = "$ORIGIN a.\nx IN A not-an-ip\n";
        let e = parse_zone(zone, None).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bad IPv4"));
    }

    #[test]
    fn relative_name_without_origin_rejected() {
        let e = parse_zone("x IN A 1.2.3.4\n", None).unwrap_err();
        assert!(e.message.contains("no $ORIGIN"));
    }

    #[test]
    fn unsupported_constructs_rejected() {
        assert!(parse_zone("$INCLUDE other.zone\n", None).is_err());
        assert!(parse_zone("$ORIGIN a.\nx IN SOA ( multi\n", None).is_err());
        assert!(parse_zone("$ORIGIN a.\nx CH A 1.2.3.4\n", None).is_err());
        assert!(parse_zone("$ORIGIN a.\nx IN WKS whatever\n", None).is_err());
    }

    #[test]
    fn default_origin_parameter_is_used() {
        let origin = DnsName::parse("d.example").unwrap();
        let records = parse_zone("www IN A 1.2.3.4\n", Some(&origin)).unwrap();
        assert_eq!(records[0].name.to_string(), "www.d.example");
    }

    #[test]
    fn format_round_trips_through_parse() {
        let records = parse_zone(SAMPLE, None).unwrap();
        let text = format_zone(&records);
        let reparsed = parse_zone(&text, None).unwrap();
        assert_eq!(records.len(), reparsed.len());
        for (a, b) in records.iter().zip(&reparsed) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.rdata, b.rdata);
        }
    }
}
