//! Byte-level reader and writer for the DNS wire format.
//!
//! The [`WireWriter`] tracks name-compression targets: every time a name is
//! written, the positions of its suffixes are remembered so later names can
//! emit 2-octet pointers instead of repeating labels (RFC 1035 §4.1.4).
//! The [`WireReader`] follows pointers with loop protection.

use crate::error::DnsError;
use crate::intern::{self, Label};
use crate::pool::{self, PooledBuf};
use bytes::{BufMut, BytesMut};

/// Maximum hops a reader will follow through compression pointers before
/// declaring a loop. RFC 1035 names have at most 128 labels, so any honest
/// chain is shorter.
const MAX_POINTER_HOPS: usize = 128;

/// Maximum encodable DNS message (TCP length prefix is 16-bit).
pub const MAX_MESSAGE_LEN: usize = 65_535;

/// Growable big-endian writer with compression bookkeeping.
///
/// Compression state is a list of suffix start offsets in insertion
/// order; lookups re-read the label sequence out of the buffer itself
/// (following pointers) and byte-compare. Offsets are unique per suffix —
/// a repeated suffix compresses to a pointer before it could ever be
/// recorded twice — so scanning in insertion order finds the *first*
/// occurrence, exactly like the suffix→offset map this replaced, with no
/// per-name string keys.
pub struct WireWriter {
    buf: BytesMut,
    /// Offsets at which a (pointer-addressable) name suffix was encoded.
    name_offsets: Vec<u16>,
}

impl Default for WireWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl WireWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::with_buf(BytesMut::with_capacity(512))
    }

    /// Create a writer over a pooled buffer (see [`crate::pool`]); pair
    /// with [`finish_pooled`](Self::finish_pooled) to recycle it.
    pub fn pooled() -> Self {
        Self::with_buf(pool::take())
    }

    /// Create a writer over an existing buffer, reusing its capacity. The
    /// buffer is cleared first.
    pub fn with_buf(mut buf: BytesMut) -> Self {
        buf.clear();
        WireWriter {
            buf,
            name_offsets: Vec::new(),
        }
    }

    /// Current length of the encoded buffer.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and return the encoded bytes. The buffer is moved, not
    /// copied.
    pub fn finish(self) -> Result<Vec<u8>, DnsError> {
        Ok(Vec::from(self.into_buf()?))
    }

    /// Finish and return the backing buffer (for callers reusing their
    /// own allocation via [`with_buf`](Self::with_buf)).
    pub fn into_buf(self) -> Result<BytesMut, DnsError> {
        if self.buf.len() > MAX_MESSAGE_LEN {
            return Err(DnsError::MessageTooLong(self.buf.len()));
        }
        Ok(self.buf)
    }

    /// Finish a [`pooled`](Self::pooled) writer: the encoded bytes stay
    /// in the pooled buffer and recycle when the handle drops.
    pub fn finish_pooled(self) -> Result<PooledBuf, DnsError> {
        Ok(PooledBuf::new(self.into_buf()?))
    }

    /// Append a single octet.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a big-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Append a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Append raw bytes.
    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Overwrite a previously written big-endian u16 (e.g. RDLENGTH
    /// back-patching).
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        let bytes = v.to_be_bytes();
        self.buf[offset] = bytes[0];
        self.buf[offset + 1] = bytes[1];
    }

    /// Write a domain name given as lowercase labels, using compression
    /// pointers for any suffix already present in the message.
    ///
    /// Accepts any label representation (`&[Label]`, `&[String]`, …).
    pub fn put_name<L: AsRef<str>>(&mut self, labels: &[L]) -> Result<(), DnsError> {
        for start in 0..labels.len() {
            if let Some(offset) = self.find_suffix(&labels[start..]) {
                // Pointer: two octets, top bits 11.
                self.put_u16(0xC000 | offset);
                return Ok(());
            }
            // Record this suffix's position if it is pointer-addressable
            // (pointers are 14-bit).
            let here = self.buf.len();
            if here <= 0x3FFF {
                self.name_offsets.push(here as u16);
            }
            let bytes = labels[start].as_ref().as_bytes();
            if bytes.len() > 63 {
                return Err(DnsError::LabelTooLong(bytes.len()));
            }
            self.put_u8(bytes.len() as u8);
            self.put_slice(bytes);
        }
        self.put_u8(0); // root
        Ok(())
    }

    /// Earliest recorded offset whose encoded label sequence equals
    /// `labels`, if any.
    fn find_suffix<L: AsRef<str>>(&self, labels: &[L]) -> Option<u16> {
        self.name_offsets
            .iter()
            .copied()
            .find(|&off| self.suffix_matches(off as usize, labels))
    }

    /// Byte-compare the name encoded at `off` (following pointers)
    /// against `labels`.
    fn suffix_matches<L: AsRef<str>>(&self, mut off: usize, labels: &[L]) -> bool {
        let buf = &self.buf[..];
        let mut i = 0usize;
        loop {
            // Offsets recorded earlier in the *current* `put_name` call
            // belong to names still being written; walking off the end of
            // the buffer means the recorded suffix has strictly more
            // labels than the query, i.e. no match.
            let Some(&len) = buf.get(off) else {
                return false;
            };
            let len = len as usize;
            if len & 0xC0 == 0xC0 {
                // Recorded suffixes only ever point at earlier recorded
                // suffixes, so this cannot loop.
                off = ((len & 0x3F) << 8) | buf[off + 1] as usize;
                continue;
            }
            if len == 0 {
                return i == labels.len();
            }
            if i == labels.len() {
                return false;
            }
            let label = labels[i].as_ref().as_bytes();
            if label.len() != len || &buf[off + 1..off + 1 + len] != label {
                return false;
            }
            off += 1 + len;
            i += 1;
        }
    }
}

/// Bounds-checked big-endian reader over a full DNS message.
///
/// The reader keeps the entire message visible because compression pointers
/// may refer backwards to any earlier offset.
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wrap a message buffer.
    pub fn new(data: &'a [u8]) -> Self {
        WireReader { data, pos: 0 }
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    /// Read one octet.
    pub fn get_u8(&mut self) -> Result<u8, DnsError> {
        let v = *self.data.get(self.pos).ok_or(DnsError::Truncated)?;
        self.pos += 1;
        Ok(v)
    }

    /// Read a big-endian u16.
    pub fn get_u16(&mut self) -> Result<u16, DnsError> {
        let hi = self.get_u8()? as u16;
        let lo = self.get_u8()? as u16;
        Ok(hi << 8 | lo)
    }

    /// Read a big-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, DnsError> {
        let hi = self.get_u16()? as u32;
        let lo = self.get_u16()? as u32;
        Ok(hi << 16 | lo)
    }

    /// Read `n` raw bytes.
    pub fn get_slice(&mut self, n: usize) -> Result<&'a [u8], DnsError> {
        if self.remaining() < n {
            return Err(DnsError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Skip `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<(), DnsError> {
        if self.remaining() < n {
            return Err(DnsError::Truncated);
        }
        self.pos += n;
        Ok(())
    }

    /// Read a (possibly compressed) domain name, returning lowercase
    /// interned labels. The cursor advances past the name as it appears
    /// at the current position; pointer targets are followed without
    /// moving the cursor.
    pub fn get_name(&mut self) -> Result<Vec<Label>, DnsError> {
        let mut labels = Vec::new();
        let mut pos = self.pos;
        let mut followed_pointer = false;
        let mut hops = 0usize;
        let mut total_len = 0usize;
        loop {
            let len = *self.data.get(pos).ok_or(DnsError::Truncated)? as usize;
            if len & 0xC0 == 0xC0 {
                // Compression pointer.
                let second = *self.data.get(pos + 1).ok_or(DnsError::Truncated)? as usize;
                let target = ((len & 0x3F) << 8) | second;
                if target >= pos {
                    return Err(DnsError::BadCompressionPointer(target as u16));
                }
                if !followed_pointer {
                    self.pos = pos + 2;
                    followed_pointer = true;
                }
                pos = target;
                hops += 1;
                if hops > MAX_POINTER_HOPS {
                    return Err(DnsError::CompressionLoop);
                }
                continue;
            }
            if len & 0xC0 != 0 {
                // 0b01/0b10 prefixes are reserved.
                return Err(DnsError::UnsupportedValue("label type", len as u32));
            }
            if len == 0 {
                if !followed_pointer {
                    self.pos = pos + 1;
                }
                return Ok(labels);
            }
            if len > 63 {
                return Err(DnsError::LabelTooLong(len));
            }
            let start = pos + 1;
            let end = start + len;
            if end > self.data.len() {
                return Err(DnsError::Truncated);
            }
            total_len += len + 1;
            if total_len > 255 {
                return Err(DnsError::NameTooLong(total_len));
            }
            let label = &self.data[start..end];
            labels.push(intern::intern_bytes_lossy_lower(label));
            pos = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Interned labels as plain strings, for comparison with expectations.
    fn strs(labels: Vec<Label>) -> Vec<String> {
        labels.into_iter().map(|l| l.as_str().to_string()).collect()
    }

    #[test]
    fn primitive_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEADBEEF);
        w.put_slice(b"xy");
        let buf = w.finish().unwrap();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_slice(2).unwrap(), b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = WireReader::new(&[0x01]);
        assert_eq!(r.get_u16(), Err(DnsError::Truncated));
        let mut r2 = WireReader::new(&[]);
        assert_eq!(r2.get_u8(), Err(DnsError::Truncated));
    }

    #[test]
    fn name_roundtrip_without_compression() {
        let labels = vec!["www".to_string(), "example".to_string(), "com".to_string()];
        let mut w = WireWriter::new();
        w.put_name(&labels).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf, b"\x03www\x07example\x03com\x00");
        let mut r = WireReader::new(&buf);
        assert_eq!(strs(r.get_name().unwrap()), labels);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn second_name_is_compressed() {
        let a = vec!["a".to_string(), "example".to_string(), "com".to_string()];
        let b = vec!["b".to_string(), "example".to_string(), "com".to_string()];
        let mut w = WireWriter::new();
        w.put_name(&a).unwrap();
        let len_after_first = w.len();
        w.put_name(&b).unwrap();
        let buf = w.finish().unwrap();
        // Second name is label "b" (2 bytes) + pointer (2 bytes).
        assert_eq!(buf.len(), len_after_first + 4);
        let mut r = WireReader::new(&buf);
        assert_eq!(strs(r.get_name().unwrap()), a);
        assert_eq!(strs(r.get_name().unwrap()), b);
    }

    #[test]
    fn identical_name_is_a_single_pointer() {
        let a = vec!["example".to_string(), "com".to_string()];
        let mut w = WireWriter::new();
        w.put_name(&a).unwrap();
        let first = w.len();
        w.put_name(&a).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf.len(), first + 2);
    }

    #[test]
    fn forward_pointer_rejected() {
        // Pointer at offset 0 pointing to offset 0 (self-loop / forward).
        let buf = [0xC0, 0x00];
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            r.get_name(),
            Err(DnsError::BadCompressionPointer(_))
        ));
    }

    #[test]
    fn pointer_chain_is_followed() {
        // "com" at 0, then pointer to it at 5, then "www" + pointer to 5.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"\x03com\x00"); // offset 0..5
        buf.extend_from_slice(&[0xC0, 0x00]); // offset 5: -> 0
        buf.extend_from_slice(b"\x03www");
        buf.extend_from_slice(&[0xC0, 0x05]); // -> 5 -> 0
        let mut r = WireReader::new(&buf);
        assert_eq!(strs(r.get_name().unwrap()), vec!["com".to_string()]);
        assert_eq!(strs(r.get_name().unwrap()), vec!["com".to_string()]);
        assert_eq!(
            strs(r.get_name().unwrap()),
            vec!["www".to_string(), "com".to_string()]
        );
    }

    #[test]
    fn reserved_label_type_rejected() {
        let buf = [0x80, 0x01];
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            r.get_name(),
            Err(DnsError::UnsupportedValue(_, _))
        ));
    }

    #[test]
    fn overlong_label_rejected_on_write() {
        let mut w = WireWriter::new();
        let long = vec!["x".repeat(64)];
        assert!(matches!(w.put_name(&long), Err(DnsError::LabelTooLong(64))));
    }

    #[test]
    fn patch_u16_overwrites_in_place() {
        let mut w = WireWriter::new();
        w.put_u16(0);
        w.put_u8(7);
        w.patch_u16(0, 0xBEEF);
        let buf = w.finish().unwrap();
        assert_eq!(buf, vec![0xBE, 0xEF, 7]);
    }

    #[test]
    fn names_are_lowercased_on_read() {
        let buf = b"\x03WwW\x03CoM\x00";
        let mut r = WireReader::new(buf);
        assert_eq!(
            strs(r.get_name().unwrap()),
            vec!["www".to_string(), "com".to_string()]
        );
    }

    #[test]
    fn repeated_leading_label_does_not_false_match_mid_write() {
        // "a.a": while writing, the suffix ["a"] must not match the
        // still-unterminated ["a", "a"] recorded one label earlier.
        let mut w = WireWriter::new();
        w.put_name(&["a".to_string(), "a".to_string()]).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf, b"\x01a\x01a\x00");
        let mut r = WireReader::new(&buf);
        assert_eq!(strs(r.get_name().unwrap()), vec!["a", "a"]);
    }
}
