//! Questions and resource records.

use crate::error::DnsError;
use crate::name::DnsName;
use crate::rdata::RData;
use crate::types::{RecordClass, RecordType};
use crate::wire::{WireReader, WireWriter};
use serde::{Deserialize, Serialize};

/// A question section entry (RFC 1035 §4.1.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Question {
    /// Queried name.
    pub qname: DnsName,
    /// Queried type.
    pub qtype: RecordType,
    /// Queried class (almost always IN).
    pub qclass: RecordClass,
}

impl Question {
    /// An IN-class question.
    pub fn new(qname: DnsName, qtype: RecordType) -> Self {
        Question {
            qname,
            qtype,
            qclass: RecordClass::In,
        }
    }

    /// Encode with name compression.
    pub fn encode(&self, w: &mut WireWriter) -> Result<(), DnsError> {
        w.put_name(self.qname.labels())?;
        w.put_u16(self.qtype.to_u16());
        w.put_u16(self.qclass.to_u16());
        Ok(())
    }

    /// Decode one question.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, DnsError> {
        let labels = r.get_name()?;
        let qname = DnsName::from_labels_unchecked(labels);
        let qtype = RecordType::from_u16(r.get_u16()?);
        let qclass = RecordClass::from_u16(r.get_u16()?);
        Ok(Question {
            qname,
            qtype,
            qclass,
        })
    }
}

/// A resource record (RFC 1035 §4.1.3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceRecord {
    /// Owner name.
    pub name: DnsName,
    /// Record type. Usually `rdata.natural_type()`, but kept explicit so
    /// unknown types decode losslessly.
    pub rtype: RecordType,
    /// Record class.
    pub rclass: RecordClass,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Typed payload.
    pub rdata: RData,
}

impl ResourceRecord {
    /// An IN-class record whose type is derived from the payload.
    pub fn new(name: DnsName, ttl: u32, rdata: RData) -> Self {
        let rtype = rdata.natural_type().unwrap_or(RecordType::Unknown(0));
        ResourceRecord {
            name,
            rtype,
            rclass: RecordClass::In,
            ttl,
            rdata,
        }
    }

    /// Encode: owner name (compressed), type, class, TTL, then RDATA with a
    /// back-patched RDLENGTH.
    pub fn encode(&self, w: &mut WireWriter) -> Result<(), DnsError> {
        w.put_name(self.name.labels())?;
        w.put_u16(self.rtype.to_u16());
        w.put_u16(self.rclass.to_u16());
        w.put_u32(self.ttl);
        let len_at = w.len();
        w.put_u16(0); // placeholder RDLENGTH
        let before = w.len();
        self.rdata.encode(w)?;
        let rdlen = w.len() - before;
        if rdlen > u16::MAX as usize {
            return Err(DnsError::MessageTooLong(rdlen));
        }
        w.patch_u16(len_at, rdlen as u16);
        Ok(())
    }

    /// Decode one record.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, DnsError> {
        let labels = r.get_name()?;
        let name = DnsName::from_labels_unchecked(labels);
        let rtype = RecordType::from_u16(r.get_u16()?);
        let rclass = RecordClass::from_u16(r.get_u16()?);
        let ttl = r.get_u32()?;
        let rdlen = r.get_u16()? as usize;
        if r.remaining() < rdlen {
            return Err(DnsError::Truncated);
        }
        let rdata = RData::decode(r, rtype, rdlen)?;
        Ok(ResourceRecord {
            name,
            rtype,
            rclass,
            ttl,
            rdata,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn question_roundtrip() {
        let q = Question::new(DnsName::parse("uuid.a.com").unwrap(), RecordType::A);
        let mut w = WireWriter::new();
        q.encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        let d = Question::decode(&mut WireReader::new(&buf)).unwrap();
        assert_eq!(d, q);
    }

    #[test]
    fn record_roundtrip() {
        let rr = ResourceRecord::new(
            DnsName::parse("uuid.a.com").unwrap(),
            300,
            RData::A(Ipv4Addr::new(203, 0, 113, 7)),
        );
        let mut w = WireWriter::new();
        rr.encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        let d = ResourceRecord::decode(&mut WireReader::new(&buf)).unwrap();
        assert_eq!(d, rr);
    }

    #[test]
    fn rdlength_is_backpatched_correctly() {
        let rr = ResourceRecord::new(
            DnsName::parse("x.y").unwrap(),
            60,
            RData::Txt(vec!["abc".into()]),
        );
        let mut w = WireWriter::new();
        rr.encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        // name: 1x 1y 0 = 5 bytes (0x01 x 0x01 y 0x00), type 2, class 2, ttl 4 -> rdlength at 13.
        let rdlen = u16::from_be_bytes([buf[13], buf[14]]);
        assert_eq!(rdlen as usize, 4); // 1 length octet + "abc"
    }

    #[test]
    fn record_with_compressed_owner_decodes() {
        // Two records sharing a suffix; second owner is compressed.
        let rr1 = ResourceRecord::new(
            DnsName::parse("a.example.com").unwrap(),
            60,
            RData::A(Ipv4Addr::new(1, 1, 1, 1)),
        );
        let rr2 = ResourceRecord::new(
            DnsName::parse("b.example.com").unwrap(),
            60,
            RData::A(Ipv4Addr::new(2, 2, 2, 2)),
        );
        let mut w = WireWriter::new();
        rr1.encode(&mut w).unwrap();
        rr2.encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        let mut r = WireReader::new(&buf);
        assert_eq!(ResourceRecord::decode(&mut r).unwrap(), rr1);
        assert_eq!(ResourceRecord::decode(&mut r).unwrap(), rr2);
    }

    #[test]
    fn truncated_record_errors() {
        let rr = ResourceRecord::new(
            DnsName::parse("a.com").unwrap(),
            60,
            RData::A(Ipv4Addr::new(1, 2, 3, 4)),
        );
        let mut w = WireWriter::new();
        rr.encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        for cut in 1..buf.len() {
            assert!(
                ResourceRecord::decode(&mut WireReader::new(&buf[..cut])).is_err(),
                "cut at {cut} should fail"
            );
        }
    }
}
