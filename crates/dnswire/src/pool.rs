//! Per-worker wire-buffer pool.
//!
//! Encoding a DNS message needs a scratch buffer; allocating one per
//! message is exactly the churn the zero-allocation hot path forbids.
//! This pool keeps a small thread-local stash of [`BytesMut`] buffers:
//! [`take`] hands one out with its capacity intact, and [`give`] (or
//! dropping a [`PooledBuf`]) returns it. After the first few messages on
//! a worker thread, every encode reuses warmed-up capacity.

use bytes::BytesMut;
use std::cell::RefCell;

/// Buffers kept per thread; beyond this, returned buffers are dropped.
const POOL_CAP: usize = 8;
/// Fresh buffers start with one typical message's capacity.
const INITIAL_CAPACITY: usize = 512;

thread_local! {
    static POOL: RefCell<Vec<BytesMut>> = const { RefCell::new(Vec::new()) };
}

/// Take a cleared buffer from the thread's pool (allocating a fresh one
/// only when the pool is empty — cold, exempt work).
pub fn take() -> BytesMut {
    POOL.with(|pool| pool.borrow_mut().pop())
        .unwrap_or_else(|| {
            let _cold = dohperf_telemetry::alloc::exempt_scope();
            BytesMut::with_capacity(INITIAL_CAPACITY)
        })
}

/// Return a buffer to the thread's pool, keeping its capacity.
pub fn give(mut buf: BytesMut) {
    buf.clear();
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    });
}

/// An encoded message backed by a pooled buffer; the buffer returns to
/// the pool when this drops. Dereferences to the message bytes.
pub struct PooledBuf {
    buf: Option<BytesMut>,
}

impl PooledBuf {
    pub(crate) fn new(buf: BytesMut) -> Self {
        PooledBuf { buf: Some(buf) }
    }

    /// The encoded bytes.
    pub fn as_slice(&self) -> &[u8] {
        self.buf.as_ref().expect("buffer taken")
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.as_slice().len())
            .finish()
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            give(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BufMut;

    #[test]
    fn buffers_recycle_through_the_pool() {
        let mut a = take();
        a.put_slice(b"hello");
        assert_eq!(&a[..], b"hello");
        give(a);
        let b = take();
        assert!(b.is_empty(), "pooled buffers come back cleared");
    }

    #[test]
    fn pooled_buf_returns_on_drop() {
        let mut buf = take();
        buf.put_slice(b"abc");
        let pooled = PooledBuf::new(buf);
        assert_eq!(&*pooled, b"abc");
        drop(pooled);
        assert!(take().is_empty());
    }
}
