//! Typed protocol constants: record types, classes, opcodes, rcodes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Resource record type (RFC 1035 §3.2.2 plus later additions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordType {
    /// IPv4 host address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Start of authority.
    Soa,
    /// Domain name pointer (reverse DNS).
    Ptr,
    /// Mail exchange.
    Mx,
    /// Text strings.
    Txt,
    /// IPv6 host address (RFC 3596).
    Aaaa,
    /// EDNS(0) pseudo-record (RFC 6891).
    Opt,
    /// HTTPS binding (RFC 9460) — queried by modern browsers alongside A.
    Https,
    /// Anything else, preserved numerically.
    Unknown(u16),
}

impl RecordType {
    /// Wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Opt => 41,
            RecordType::Https => 65,
            RecordType::Unknown(v) => v,
        }
    }

    /// Parse a wire value (never fails; unknown values are preserved).
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            41 => RecordType::Opt,
            65 => RecordType::Https,
            other => RecordType::Unknown(other),
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::A => write!(f, "A"),
            RecordType::Ns => write!(f, "NS"),
            RecordType::Cname => write!(f, "CNAME"),
            RecordType::Soa => write!(f, "SOA"),
            RecordType::Ptr => write!(f, "PTR"),
            RecordType::Mx => write!(f, "MX"),
            RecordType::Txt => write!(f, "TXT"),
            RecordType::Aaaa => write!(f, "AAAA"),
            RecordType::Opt => write!(f, "OPT"),
            RecordType::Https => write!(f, "HTTPS"),
            RecordType::Unknown(v) => write!(f, "TYPE{v}"),
        }
    }
}

/// Record class. Only IN is used in practice; others preserved numerically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordClass {
    /// Internet.
    In,
    /// Chaos (used for server identification queries).
    Ch,
    /// Anything else.
    Unknown(u16),
}

impl RecordClass {
    /// Wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Ch => 3,
            RecordClass::Unknown(v) => v,
        }
    }

    /// Parse a wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordClass::In,
            3 => RecordClass::Ch,
            other => RecordClass::Unknown(other),
        }
    }
}

/// Query opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// Standard query.
    Query,
    /// Inverse query (obsolete).
    IQuery,
    /// Server status.
    Status,
    /// Zone change notification (RFC 1996).
    Notify,
    /// Dynamic update (RFC 2136).
    Update,
    /// Anything else.
    Unknown(u8),
}

impl Opcode {
    /// Wire value (4-bit field).
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Unknown(v) => v & 0x0F,
        }
    }

    /// Parse a wire value.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Unknown(other),
        }
    }
}

/// Response code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RCode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused by policy.
    Refused,
    /// Anything else.
    Unknown(u8),
}

impl RCode {
    /// Wire value (4-bit field).
    pub fn to_u8(self) -> u8 {
        match self {
            RCode::NoError => 0,
            RCode::FormErr => 1,
            RCode::ServFail => 2,
            RCode::NxDomain => 3,
            RCode::NotImp => 4,
            RCode::Refused => 5,
            RCode::Unknown(v) => v & 0x0F,
        }
    }

    /// Parse a wire value.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => RCode::NoError,
            1 => RCode::FormErr,
            2 => RCode::ServFail,
            3 => RCode::NxDomain,
            4 => RCode::NotImp,
            5 => RCode::Refused,
            other => RCode::Unknown(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_type_roundtrip() {
        for v in 0..70u16 {
            assert_eq!(RecordType::from_u16(v).to_u16(), v);
        }
        assert_eq!(RecordType::from_u16(1), RecordType::A);
        assert_eq!(RecordType::from_u16(28), RecordType::Aaaa);
        assert_eq!(RecordType::from_u16(41), RecordType::Opt);
        assert_eq!(RecordType::from_u16(9999), RecordType::Unknown(9999));
    }

    #[test]
    fn class_roundtrip() {
        for v in 0..10u16 {
            assert_eq!(RecordClass::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn opcode_roundtrip_masks_to_4_bits() {
        for v in 0..16u8 {
            assert_eq!(Opcode::from_u8(v).to_u8(), v);
        }
        assert_eq!(Opcode::from_u8(0x10), Opcode::Query);
    }

    #[test]
    fn rcode_roundtrip() {
        for v in 0..16u8 {
            assert_eq!(RCode::from_u8(v).to_u8(), v);
        }
        assert_eq!(RCode::from_u8(3), RCode::NxDomain);
    }

    #[test]
    fn display_names() {
        assert_eq!(RecordType::A.to_string(), "A");
        assert_eq!(RecordType::Unknown(999).to_string(), "TYPE999");
    }
}
