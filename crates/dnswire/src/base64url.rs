//! Base64url without padding (RFC 4648 §5), as required by RFC 8484 for the
//! `dns` query parameter of DoH GET requests.

use crate::error::DnsError;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// Encode bytes as unpadded base64url.
pub fn encode(input: &[u8]) -> String {
    let mut out = String::with_capacity(input.len().div_ceil(3) * 4);
    for chunk in input.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3F] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3F] as char);
        if chunk.len() > 1 {
            out.push(ALPHABET[(triple >> 6) as usize & 0x3F] as char);
        }
        if chunk.len() > 2 {
            out.push(ALPHABET[triple as usize & 0x3F] as char);
        }
    }
    out
}

/// Decode unpadded base64url. Padding characters are rejected, as RFC 8484
/// requires the unpadded form.
pub fn decode(input: &str) -> Result<Vec<u8>, DnsError> {
    fn value(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a' + 26) as u32),
            b'0'..=b'9' => Some((c - b'0' + 52) as u32),
            b'-' => Some(62),
            b'_' => Some(63),
            _ => None,
        }
    }
    let bytes = input.as_bytes();
    if bytes.len() % 4 == 1 {
        return Err(DnsError::BadBase64(format!(
            "invalid length {}",
            bytes.len()
        )));
    }
    let mut out = Vec::with_capacity(bytes.len() * 3 / 4);
    for chunk in bytes.chunks(4) {
        let mut acc: u32 = 0;
        for (i, &c) in chunk.iter().enumerate() {
            let v = value(c)
                .ok_or_else(|| DnsError::BadBase64(format!("invalid character {:?}", c as char)))?;
            acc |= v << (18 - 6 * i);
        }
        out.push((acc >> 16) as u8);
        if chunk.len() > 2 {
            out.push((acc >> 8) as u8);
        }
        if chunk.len() > 3 {
            out.push(acc as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 4648 test vectors, translated to the url alphabet, unpadded.
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg");
        assert_eq!(encode(b"fo"), "Zm8");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg");
        assert_eq!(encode(b"fooba"), "Zm9vYmE");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn url_safe_alphabet_used() {
        // 0xfb 0xff encodes to characters including '-' and '_' variants.
        let s = encode(&[0xFB, 0xEF, 0xFF]);
        assert!(!s.contains('+') && !s.contains('/'));
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn roundtrip_various_lengths() {
        for len in 0..32 {
            let data: Vec<u8> = (0..len as u8).collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn padding_rejected() {
        assert!(decode("Zg==").is_err());
    }

    #[test]
    fn invalid_characters_rejected() {
        assert!(decode("Zm9v!").is_err());
        assert!(decode("Zm+v").is_err());
        assert!(decode("Zm/v").is_err());
    }

    #[test]
    fn invalid_length_rejected() {
        assert!(decode("A").is_err());
        assert!(decode("AAAAA").is_err());
    }

    #[test]
    fn rfc8484_example() {
        // RFC 8484 §4.1 example: query for www.example.com encodes to a
        // known string starting with "AAABAAABAAAAAAAAA3d3dw".
        let msg: &[u8] = &[
            0x00, 0x00, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0x77,
            0x77, 0x77, 0x07, 0x65, 0x78, 0x61, 0x6d, 0x70, 0x6c, 0x65, 0x03, 0x63, 0x6f, 0x6d,
            0x00, 0x00, 0x01, 0x00, 0x01,
        ];
        assert_eq!(encode(msg), "AAABAAABAAAAAAAAA3d3dwdleGFtcGxlA2NvbQAAAQAB");
    }
}
