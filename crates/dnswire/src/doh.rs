//! RFC 8484 DNS-over-HTTPS payload encodings.
//!
//! A DoH request carries a binary DNS message either as the unpadded
//! base64url `dns` query parameter of a GET, or as the body of a POST with
//! content type `application/dns-message`. The paper's measurements use the
//! GET form (§2), so that is the default here.

use crate::base64url;
use crate::error::DnsError;
use crate::message::Message;
use dohperf_telemetry::flight;
use serde::{Deserialize, Serialize};

/// The DoH media type (RFC 8484 §6).
pub const DNS_MESSAGE_CONTENT_TYPE: &str = "application/dns-message";

/// HTTP method used for the DoH exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DohMethod {
    /// `GET /dns-query?dns=<base64url>` — cache-friendly, used by browsers.
    Get,
    /// `POST /dns-query` with the message as the body.
    Post,
}

/// A DoH request ready to be carried over HTTP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DohRequest {
    /// HTTP method.
    pub method: DohMethod,
    /// Request path including any query string.
    pub path: String,
    /// Body (empty for GET).
    pub body: Vec<u8>,
}

impl DohRequest {
    /// Build a GET request for a DNS message against the conventional
    /// `/dns-query` endpoint.
    ///
    /// Per RFC 8484, the message id SHOULD be 0 for GET requests so that
    /// identical queries are HTTP-cacheable; we zero it here.
    pub fn get(message: &Message) -> Result<Self, DnsError> {
        let mut normalized = message.clone();
        normalized.header.id = 0;
        let wire = normalized.encode()?;
        if flight::active() {
            flight::event_here(format!(
                "dnswire: encode GET /dns-query ({} wire bytes, id zeroed)",
                wire.len()
            ));
        }
        Ok(DohRequest {
            method: DohMethod::Get,
            path: format!("/dns-query?dns={}", base64url::encode(&wire)),
            body: Vec::new(),
        })
    }

    /// Build a POST request.
    pub fn post(message: &Message) -> Result<Self, DnsError> {
        let body = message.encode()?;
        if flight::active() {
            flight::event_here(format!(
                "dnswire: encode POST /dns-query ({} wire bytes)",
                body.len()
            ));
        }
        Ok(DohRequest {
            method: DohMethod::Post,
            path: "/dns-query".to_string(),
            body,
        })
    }

    /// Recover the DNS message from a request (server side).
    pub fn decode_message(&self) -> Result<Message, DnsError> {
        if flight::active() {
            flight::event_here(format!(
                "dnswire: decode {:?} {}",
                self.method,
                self.path.split('?').next().unwrap_or(&self.path)
            ));
        }
        match self.method {
            DohMethod::Get => {
                let query = self
                    .path
                    .split_once('?')
                    .map(|(_, q)| q)
                    .ok_or_else(|| DnsError::BadDohRequest("missing query string".into()))?;
                let dns = query
                    .split('&')
                    .find_map(|kv| kv.strip_prefix("dns="))
                    .ok_or_else(|| DnsError::BadDohRequest("missing dns parameter".into()))?;
                let wire = base64url::decode(dns)?;
                Message::decode(&wire)
            }
            DohMethod::Post => {
                if self.body.is_empty() {
                    return Err(DnsError::BadDohRequest("empty POST body".into()));
                }
                Message::decode(&self.body)
            }
        }
    }
}

/// Parse the `dns` parameter out of a raw path+query string (used by the
/// live HTTP server, which receives paths rather than `DohRequest`s).
pub fn message_from_get_path(path: &str) -> Result<Message, DnsError> {
    let req = DohRequest {
        method: DohMethod::Get,
        path: path.to_string(),
        body: Vec::new(),
    };
    req.decode_message()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::DnsName;
    use crate::types::RecordType;

    fn sample() -> Message {
        Message::query(0x77, DnsName::parse("abc123.a.com").unwrap(), RecordType::A)
    }

    #[test]
    fn get_roundtrip_zeroes_id() {
        let msg = sample();
        let req = DohRequest::get(&msg).unwrap();
        assert!(req.path.starts_with("/dns-query?dns="));
        assert!(req.body.is_empty());
        let decoded = req.decode_message().unwrap();
        assert_eq!(decoded.header.id, 0, "GET requests must zero the id");
        assert_eq!(decoded.questions, msg.questions);
    }

    #[test]
    fn post_roundtrip_preserves_id() {
        let msg = sample();
        let req = DohRequest::post(&msg).unwrap();
        assert_eq!(req.path, "/dns-query");
        let decoded = req.decode_message().unwrap();
        assert_eq!(decoded.header.id, 0x77);
        assert_eq!(decoded.questions, msg.questions);
    }

    #[test]
    fn get_without_dns_param_rejected() {
        let req = DohRequest {
            method: DohMethod::Get,
            path: "/dns-query?other=1".to_string(),
            body: Vec::new(),
        };
        assert!(req.decode_message().is_err());
        let req2 = DohRequest {
            method: DohMethod::Get,
            path: "/dns-query".to_string(),
            body: Vec::new(),
        };
        assert!(req2.decode_message().is_err());
    }

    #[test]
    fn empty_post_body_rejected() {
        let req = DohRequest {
            method: DohMethod::Post,
            path: "/dns-query".to_string(),
            body: Vec::new(),
        };
        assert!(req.decode_message().is_err());
    }

    #[test]
    fn get_path_with_extra_params_parses() {
        let msg = sample();
        let mut req = DohRequest::get(&msg).unwrap();
        req.path.push_str("&ct=application/dns-message");
        // dns= param comes first; parsing still succeeds.
        assert!(req.decode_message().is_ok());
    }

    #[test]
    fn message_from_get_path_helper() {
        let msg = sample();
        let req = DohRequest::get(&msg).unwrap();
        let decoded = message_from_get_path(&req.path).unwrap();
        assert_eq!(decoded.questions, msg.questions);
    }

    #[test]
    fn corrupted_base64_rejected() {
        let msg = sample();
        let req = DohRequest::get(&msg).unwrap();
        let bad = DohRequest {
            method: DohMethod::Get,
            path: format!("{}%%%", req.path),
            body: Vec::new(),
        };
        assert!(bad.decode_message().is_err());
    }
}
