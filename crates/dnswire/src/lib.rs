//! # dohperf-dns
//!
//! A from-scratch DNS implementation: the RFC 1035 wire format (names with
//! message compression, headers, questions, resource records), EDNS(0)
//! (RFC 6891), a TTL-driven cache, and the RFC 8484 DNS-over-HTTPS payload
//! encodings (base64url GET and POST).
//!
//! This crate is pure protocol logic — no sockets, no simulation — so it is
//! shared by both the simulated substrate (`dohperf-proxy`,
//! `dohperf-providers`) and the real loopback servers in `dohperf-livenet`.
//!
//! ## Example
//!
//! ```
//! use dohperf_dns::prelude::*;
//!
//! let query = Message::query(0x1234, DnsName::parse("example.com").unwrap(), RecordType::A);
//! let bytes = query.encode().unwrap();
//! let decoded = Message::decode(&bytes).unwrap();
//! assert_eq!(decoded.header.id, 0x1234);
//! assert_eq!(decoded.questions[0].qtype, RecordType::A);
//! ```

pub mod base64url;
pub mod cache;
pub mod doh;
pub mod edns;
pub mod error;
pub mod header;
pub mod intern;
pub mod message;
pub mod name;
pub mod pool;
pub mod rdata;
pub mod record;
pub mod resolver;
pub mod types;
pub mod wire;
pub mod zonefile;

pub use cache::{CacheKey, DnsCache};
pub use doh::{DohMethod, DohRequest};
pub use edns::{add_edns, edns_of, EdnsOptions};
pub use error::DnsError;
pub use header::{Header, HeaderFlags};
pub use intern::Label;
pub use message::Message;
pub use name::DnsName;
pub use pool::PooledBuf;
pub use rdata::RData;
pub use record::{Question, ResourceRecord};
pub use resolver::{Answer, IterativeResolver, ResolveError, Step};
pub use types::{Opcode, RCode, RecordClass, RecordType};
pub use zonefile::{format_zone, parse_zone, ZoneFileError};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::cache::{CacheKey, DnsCache};
    pub use crate::doh::{DohMethod, DohRequest};
    pub use crate::error::DnsError;
    pub use crate::header::{Header, HeaderFlags};
    pub use crate::message::Message;
    pub use crate::name::DnsName;
    pub use crate::rdata::RData;
    pub use crate::record::{Question, ResourceRecord};
    pub use crate::types::{Opcode, RCode, RecordClass, RecordType};
}
