//! A TTL-driven DNS cache.
//!
//! The paper deliberately measures *cache misses* (fresh UUID subdomains),
//! but the surrounding system still needs a cache: resolvers cache the NS
//! records of the measurement zone, exit nodes cache the DoH provider's
//! bootstrap A record, and the "cache hits vs misses" future-work item
//! (§7) is exercised in tests and examples through this type.
//!
//! Time is supplied by the caller in whole seconds, so the cache works with
//! both simulated and wall-clock time.

use crate::name::DnsName;
use crate::record::ResourceRecord;
use crate::types::RecordType;
use std::collections::HashMap;

/// Cache key: (owner name, record type).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Owner name.
    pub name: DnsName,
    /// Record type.
    pub rtype: RecordType,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    records: Vec<ResourceRecord>,
    expires_at: u64,
}

/// A positive-answer cache with per-entry absolute expiry.
#[derive(Debug, Default)]
pub struct DnsCache {
    entries: HashMap<CacheKey, CacheEntry>,
    hits: u64,
    misses: u64,
}

impl DnsCache {
    /// An empty cache.
    pub fn new() -> Self {
        DnsCache::default()
    }

    /// Insert records under `key`, expiring `ttl` seconds after `now`.
    /// A zero TTL is honoured as "do not cache".
    pub fn insert(&mut self, key: CacheKey, records: Vec<ResourceRecord>, now: u64, ttl: u32) {
        if ttl == 0 {
            return;
        }
        self.entries.insert(
            key,
            CacheEntry {
                records,
                expires_at: now.saturating_add(u64::from(ttl)),
            },
        );
    }

    /// Look up `key` at time `now`; expired entries are evicted lazily.
    pub fn get(&mut self, key: &CacheKey, now: u64) -> Option<&[ResourceRecord]> {
        match self.entries.get(key) {
            Some(entry) if entry.expires_at > now => {
                self.hits += 1;
                dohperf_telemetry::counter!("dnswire.cache_hits").inc();
                // Reborrow immutably for the return.
                Some(
                    self.entries
                        .get(key)
                        .expect("entry vanished")
                        .records
                        .as_slice(),
                )
            }
            Some(_) => {
                self.entries.remove(key);
                self.misses += 1;
                dohperf_telemetry::counter!("dnswire.cache_misses").inc();
                None
            }
            None => {
                self.misses += 1;
                dohperf_telemetry::counter!("dnswire.cache_misses").inc();
                None
            }
        }
    }

    /// Remove every expired entry eagerly; returns how many were evicted.
    pub fn evict_expired(&mut self, now: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.expires_at > now);
        before - self.entries.len()
    }

    /// Number of live entries (may include expired-but-unevicted ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses) counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit ratio in \[0,1\]; zero when no lookups have happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::RData;
    use std::net::Ipv4Addr;

    fn key(name: &str) -> CacheKey {
        CacheKey {
            name: DnsName::parse(name).unwrap(),
            rtype: RecordType::A,
        }
    }

    fn record(name: &str, ttl: u32) -> ResourceRecord {
        ResourceRecord::new(
            DnsName::parse(name).unwrap(),
            ttl,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        )
    }

    #[test]
    fn hit_within_ttl() {
        let mut c = DnsCache::new();
        c.insert(key("a.com"), vec![record("a.com", 300)], 1000, 300);
        assert!(c.get(&key("a.com"), 1299).is_some());
        assert_eq!(c.stats(), (1, 0));
    }

    #[test]
    fn miss_after_expiry() {
        let mut c = DnsCache::new();
        c.insert(key("a.com"), vec![record("a.com", 300)], 1000, 300);
        assert!(c.get(&key("a.com"), 1300).is_none());
        assert!(c.is_empty(), "expired entry should be evicted lazily");
    }

    #[test]
    fn zero_ttl_not_cached() {
        let mut c = DnsCache::new();
        c.insert(key("a.com"), vec![record("a.com", 0)], 1000, 0);
        assert!(c.get(&key("a.com"), 1000).is_none());
    }

    #[test]
    fn distinct_types_do_not_collide() {
        let mut c = DnsCache::new();
        c.insert(key("a.com"), vec![record("a.com", 60)], 0, 60);
        let aaaa = CacheKey {
            name: DnsName::parse("a.com").unwrap(),
            rtype: RecordType::Aaaa,
        };
        assert!(c.get(&aaaa, 10).is_none());
        assert!(c.get(&key("a.com"), 10).is_some());
    }

    #[test]
    fn eager_eviction_counts() {
        let mut c = DnsCache::new();
        for i in 0..10 {
            c.insert(
                key(&format!("h{i}.a.com")),
                vec![record("a.com", 10)],
                0,
                10,
            );
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.evict_expired(5), 0);
        assert_eq!(c.evict_expired(10), 10);
        assert!(c.is_empty());
    }

    #[test]
    fn hit_ratio_tracks_lookups() {
        let mut c = DnsCache::new();
        c.insert(key("a.com"), vec![record("a.com", 100)], 0, 100);
        c.get(&key("a.com"), 1);
        c.get(&key("b.com"), 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = DnsCache::new();
        c.insert(key("a.com"), vec![record("a.com", 100)], 0, 100);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn uuid_subdomains_always_miss() {
        // The paper's cache-miss methodology: every query uses a fresh
        // UUID subdomain, so the cache never helps.
        let mut c = DnsCache::new();
        for i in 0..100 {
            let k = key(&format!("uuid{i}.a.com"));
            assert!(c.get(&k, i).is_none());
            c.insert(k, vec![record("a.com", 300)], i, 300);
        }
        assert_eq!(c.stats().0, 0);
    }
}
