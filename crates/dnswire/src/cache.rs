//! A TTL-driven DNS cache with a bounded footprint.
//!
//! The paper deliberately measures *cache misses* (fresh UUID subdomains),
//! but the surrounding system still needs a cache: resolvers cache the NS
//! records of the measurement zone, exit nodes cache the DoH provider's
//! bootstrap A record, and the page-load workload (DESIGN.md §15) keeps a
//! per-(client, provider, transport) cache in the resolution loop so
//! intra-page and cross-page hits shape PLT.
//!
//! Time is supplied by the caller in whole seconds, so the cache works with
//! both simulated and wall-clock time.
//!
//! # Bounded memory and deterministic LRU
//!
//! A cache built with [`DnsCache::with_capacity`] never holds more than
//! `capacity` entries: inserting a fresh key into a full cache first evicts
//! the least-recently-used entry. Recency is tracked by a monotonic
//! operation tick stamped on insert and on every hit — ticks are unique, so
//! the LRU victim is always well defined and the eviction order never
//! depends on `HashMap` iteration order (which is seeded per-process and
//! would break the byte-identity contract). [`DnsCache::new`] keeps the
//! historical unbounded behaviour for callers that manage their own bounds.
//!
//! Every removal of a live entry — LRU pressure, [`DnsCache::evict_expired`]
//! sweeps, or lazy expiry during [`DnsCache::get`] — increments the
//! deterministic `cache.evictions` counter; lookups increment `cache.hits`
//! or `cache.misses`.

use crate::name::DnsName;
use crate::record::ResourceRecord;
use crate::types::RecordType;
use std::collections::HashMap;

/// Cache key: (owner name, record type).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Owner name.
    pub name: DnsName,
    /// Record type.
    pub rtype: RecordType,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    records: Vec<ResourceRecord>,
    expires_at: u64,
    /// Monotonic recency stamp: updated on insert and on every hit.
    /// Unique per cache, so LRU selection is deterministic.
    last_used: u64,
}

/// A positive-answer cache with per-entry absolute expiry and an optional
/// capacity bound enforced by deterministic LRU eviction.
#[derive(Debug)]
pub struct DnsCache {
    entries: HashMap<CacheKey, CacheEntry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for DnsCache {
    fn default() -> Self {
        DnsCache::new()
    }
}

impl DnsCache {
    /// An empty, unbounded cache (the historical behaviour).
    pub fn new() -> Self {
        DnsCache::with_capacity(usize::MAX)
    }

    /// An empty cache holding at most `capacity` entries; inserting into a
    /// full cache evicts the least-recently-used entry first.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "DnsCache capacity must be at least 1");
        DnsCache {
            entries: HashMap::new(),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The configured capacity bound (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evict the least-recently-used entry. Ticks are unique, so the
    /// minimum is unambiguous and independent of HashMap iteration order.
    fn evict_lru(&mut self) {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone());
        if let Some(k) = victim {
            self.entries.remove(&k);
            self.evictions += 1;
            dohperf_telemetry::counter!("cache.evictions").inc();
        }
    }

    /// Insert records under `key`, expiring `ttl` seconds after `now`.
    /// A zero TTL is honoured as "do not cache". Refreshing an existing
    /// key updates its recency; a fresh key entering a full cache evicts
    /// the least-recently-used entry first.
    pub fn insert(&mut self, key: CacheKey, records: Vec<ResourceRecord>, now: u64, ttl: u32) {
        if ttl == 0 {
            return;
        }
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        let last_used = self.next_tick();
        self.entries.insert(
            key,
            CacheEntry {
                records,
                expires_at: now.saturating_add(u64::from(ttl)),
                last_used,
            },
        );
    }

    /// Look up `key` at time `now`; expired entries are evicted lazily.
    /// A hit refreshes the entry's LRU recency.
    pub fn get(&mut self, key: &CacheKey, now: u64) -> Option<&[ResourceRecord]> {
        let tick = self.tick + 1;
        match self.entries.get_mut(key) {
            Some(entry) if entry.expires_at > now => {
                self.tick = tick;
                entry.last_used = tick;
                self.hits += 1;
                dohperf_telemetry::counter!("cache.hits").inc();
                // Reborrow immutably for the return.
                Some(
                    self.entries
                        .get(key)
                        .expect("entry vanished")
                        .records
                        .as_slice(),
                )
            }
            Some(_) => {
                self.entries.remove(key);
                self.misses += 1;
                self.evictions += 1;
                dohperf_telemetry::counter!("cache.misses").inc();
                dohperf_telemetry::counter!("cache.evictions").inc();
                None
            }
            None => {
                self.misses += 1;
                dohperf_telemetry::counter!("cache.misses").inc();
                None
            }
        }
    }

    /// Remove every expired entry eagerly; returns how many were evicted.
    /// Campaigns call this from a periodic timer-wheel tick so long runs
    /// stay bounded even when lookups never touch stale keys.
    pub fn evict_expired(&mut self, now: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.expires_at > now);
        let evicted = before - self.entries.len();
        if evicted > 0 {
            self.evictions += evicted as u64;
            dohperf_telemetry::counter!("cache.evictions").add(evicted as u64);
        }
        evicted
    }

    /// Number of live entries (may include expired-but-unevicted ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses) counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Entries removed since creation (LRU pressure, eager sweeps, and
    /// lazy expiry during lookups).
    pub fn eviction_count(&self) -> u64 {
        self.evictions
    }

    /// Hit ratio in \[0,1\]; zero when no lookups have happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::RData;
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    fn key(name: &str) -> CacheKey {
        CacheKey {
            name: DnsName::parse(name).unwrap(),
            rtype: RecordType::A,
        }
    }

    fn record(name: &str, ttl: u32) -> ResourceRecord {
        ResourceRecord::new(
            DnsName::parse(name).unwrap(),
            ttl,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        )
    }

    #[test]
    fn hit_within_ttl() {
        let mut c = DnsCache::new();
        c.insert(key("a.com"), vec![record("a.com", 300)], 1000, 300);
        assert!(c.get(&key("a.com"), 1299).is_some());
        assert_eq!(c.stats(), (1, 0));
    }

    #[test]
    fn miss_after_expiry() {
        let mut c = DnsCache::new();
        c.insert(key("a.com"), vec![record("a.com", 300)], 1000, 300);
        assert!(c.get(&key("a.com"), 1300).is_none());
        assert!(c.is_empty(), "expired entry should be evicted lazily");
        assert_eq!(c.eviction_count(), 1);
    }

    #[test]
    fn zero_ttl_not_cached() {
        let mut c = DnsCache::new();
        c.insert(key("a.com"), vec![record("a.com", 0)], 1000, 0);
        assert!(c.get(&key("a.com"), 1000).is_none());
    }

    #[test]
    fn distinct_types_do_not_collide() {
        let mut c = DnsCache::new();
        c.insert(key("a.com"), vec![record("a.com", 60)], 0, 60);
        let aaaa = CacheKey {
            name: DnsName::parse("a.com").unwrap(),
            rtype: RecordType::Aaaa,
        };
        assert!(c.get(&aaaa, 10).is_none());
        assert!(c.get(&key("a.com"), 10).is_some());
    }

    #[test]
    fn eager_eviction_counts() {
        let mut c = DnsCache::new();
        for i in 0..10 {
            c.insert(
                key(&format!("h{i}.a.com")),
                vec![record("a.com", 10)],
                0,
                10,
            );
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.evict_expired(5), 0);
        assert_eq!(c.evict_expired(10), 10);
        assert!(c.is_empty());
        assert_eq!(c.eviction_count(), 10);
    }

    #[test]
    fn capacity_bound_is_enforced() {
        let mut c = DnsCache::with_capacity(3);
        for i in 0..8 {
            c.insert(
                key(&format!("h{i}.a.com")),
                vec![record("a.com", 100)],
                0,
                100,
            );
            assert!(c.len() <= 3, "cache exceeded capacity at insert {i}");
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.eviction_count(), 5);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut c = DnsCache::with_capacity(2);
        c.insert(key("old.a.com"), vec![record("a.com", 100)], 0, 100);
        c.insert(key("new.a.com"), vec![record("a.com", 100)], 0, 100);
        // Touch the older entry: it becomes most recent.
        assert!(c.get(&key("old.a.com"), 1).is_some());
        c.insert(key("third.a.com"), vec![record("a.com", 100)], 2, 100);
        assert!(c.get(&key("old.a.com"), 3).is_some(), "touched entry kept");
        assert!(
            c.get(&key("new.a.com"), 3).is_none(),
            "untouched entry evicted"
        );
        assert!(c.get(&key("third.a.com"), 3).is_some());
    }

    #[test]
    fn refreshing_an_existing_key_does_not_evict() {
        let mut c = DnsCache::with_capacity(2);
        c.insert(key("a.a.com"), vec![record("a.com", 100)], 0, 100);
        c.insert(key("b.a.com"), vec![record("a.com", 100)], 0, 100);
        c.insert(key("a.a.com"), vec![record("a.com", 100)], 1, 100);
        assert_eq!(c.len(), 2);
        assert_eq!(c.eviction_count(), 0);
    }

    #[test]
    fn capacity_one_holds_exactly_the_latest_entry() {
        let mut c = DnsCache::with_capacity(1);
        c.insert(key("a.a.com"), vec![record("a.com", 100)], 0, 100);
        c.insert(key("b.a.com"), vec![record("a.com", 100)], 0, 100);
        assert_eq!(c.len(), 1);
        assert!(c.get(&key("b.a.com"), 1).is_some());
    }

    #[test]
    fn hit_ratio_tracks_lookups() {
        let mut c = DnsCache::new();
        c.insert(key("a.com"), vec![record("a.com", 100)], 0, 100);
        c.get(&key("a.com"), 1);
        c.get(&key("b.com"), 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = DnsCache::new();
        c.insert(key("a.com"), vec![record("a.com", 100)], 0, 100);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn uuid_subdomains_always_miss() {
        // The paper's cache-miss methodology: every query uses a fresh
        // UUID subdomain, so the cache never helps.
        let mut c = DnsCache::new();
        for i in 0..100 {
            let k = key(&format!("uuid{i}.a.com"));
            assert!(c.get(&k, i).is_none());
            c.insert(k, vec![record("a.com", 300)], i, 300);
        }
        assert_eq!(c.stats().0, 0);
    }

    /// Pure-Rust LRU reference model: (key index, expires_at, last_used)
    /// triples driven by the same op sequence as the real cache.
    #[derive(Default)]
    struct ModelCache {
        entries: Vec<(usize, u64, u64)>,
        tick: u64,
    }

    impl ModelCache {
        fn insert(&mut self, k: usize, now: u64, ttl: u32, cap: usize) {
            if ttl == 0 {
                return;
            }
            if !self.entries.iter().any(|e| e.0 == k) && self.entries.len() >= cap {
                let victim = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.2)
                    .map(|(i, _)| i)
                    .unwrap();
                self.entries.remove(victim);
            }
            self.tick += 1;
            self.entries.retain(|e| e.0 != k);
            self.entries.push((k, now + u64::from(ttl), self.tick));
        }

        fn get(&mut self, k: usize, now: u64) -> bool {
            match self.entries.iter().position(|e| e.0 == k) {
                Some(i) if self.entries[i].1 > now => {
                    self.tick += 1;
                    self.entries[i].2 = self.tick;
                    true
                }
                Some(i) => {
                    self.entries.remove(i);
                    false
                }
                None => false,
            }
        }
    }

    proptest! {
        /// TTL expiry and LRU pressure interact exactly like the flat
        /// reference model: same hits, same residents, same sizes.
        #[test]
        fn lru_ttl_interaction_matches_reference_model(
            cap in 1usize..6,
            ops in proptest::collection::vec(
                (0usize..10, 0u64..40, 0u32..20, any::<bool>()),
                1..60,
            ),
        ) {
            let mut real = DnsCache::with_capacity(cap);
            let mut model = ModelCache::default();
            let mut now = 0u64;
            for (k, dt, ttl, is_insert) in ops {
                now += dt;
                let name = format!("k{k}.a.com");
                if is_insert {
                    real.insert(key(&name), vec![record("a.com", ttl)], now, ttl);
                    model.insert(k, now, ttl, cap);
                } else {
                    let real_hit = real.get(&key(&name), now).is_some();
                    let model_hit = model.get(k, now);
                    prop_assert_eq!(real_hit, model_hit);
                }
                prop_assert_eq!(real.len(), model.entries.len());
                prop_assert!(real.len() <= cap);
            }
            // Residency agrees key-for-key at the end.
            for k in 0..10usize {
                let name = format!("k{k}.a.com");
                let real_hit = real.get(&key(&name), now).is_some();
                let model_hit = model.get(k, now);
                prop_assert_eq!(real_hit, model_hit);
            }
        }
    }
}
