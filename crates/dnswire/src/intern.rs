//! Interned DNS labels.
//!
//! Every [`Label`] is a handle into a process-wide arena of leaked,
//! deduplicated label strings. Interning makes label copies free —
//! [`DnsName`](crate::name::DnsName) clones copy a `Vec` of thin handles
//! instead of re-allocating every string — and lets the wire codec hand
//! out label text with no allocation at all.
//!
//! The arena is append-only and lives for the process (labels must stay
//! valid for as long as any `Label` does, and names outlive any one
//! campaign). Growth is bounded in practice: a campaign's vocabulary is
//! the topology's hostnames plus the handful of flight-sampled
//! measurement subdomains. The insert path is the definition of
//! copy-on-miss cold work, so it runs under
//! [`dohperf_telemetry::alloc::exempt_scope`] and never counts against
//! the steady-state allocation gate.

use std::collections::HashSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Longest label the wire format can carry (6-bit length octet).
const MAX_LABEL: usize = 63;

/// A handle to an interned, lowercase label string.
///
/// Equality first compares arena pointers (identical for identical
/// strings, since the arena dedups) and falls back to content; ordering
/// and hashing use the string content, so collections of labels behave
/// exactly like the `String` labels they replaced.
#[derive(Clone, Copy)]
pub struct Label(&'static str);

impl Label {
    /// The label text (always lowercase).
    pub fn as_str(&self) -> &'static str {
        self.0
    }

    /// The label bytes.
    pub fn as_bytes(&self) -> &'static [u8] {
        self.0.as_bytes()
    }

    /// Length in bytes.
    #[allow(clippy::len_without_is_empty)] // empty labels are unrepresentable
    pub fn len(&self) -> usize {
        self.0.len()
    }
}

impl AsRef<str> for Label {
    fn as_ref(&self) -> &str {
        self.0
    }
}

impl PartialEq for Label {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.0, other.0) || self.0 == other.0
    }
}
impl Eq for Label {}

impl PartialOrd for Label {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Label {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(other.0)
    }
}

impl std::hash::Hash for Label {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.0, f)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl serde::Serialize for Label {}
impl serde::Deserialize for Label {}

fn arena() -> &'static Mutex<HashSet<&'static str>> {
    static ARENA: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    ARENA.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Intern an already-lowercase label. Hits are allocation-free; misses
/// leak one copy into the arena under an exempt scope.
pub fn intern(label: &str) -> Label {
    debug_assert!(!label.bytes().any(|b| b.is_ascii_uppercase()));
    let mut set = arena().lock().expect("label arena poisoned");
    if let Some(&found) = set.get(label) {
        return Label(found);
    }
    let _cold = dohperf_telemetry::alloc::exempt_scope();
    let leaked: &'static str = Box::leak(label.to_owned().into_boxed_str());
    set.insert(leaked);
    Label(leaked)
}

/// Intern a label given as raw bytes, normalising ASCII to lowercase on a
/// stack buffer (no allocation on the hit path). Bytes that are not valid
/// ASCII take the slow lossy-decode path the old `String` reader used.
pub fn intern_bytes_lossy_lower(bytes: &[u8]) -> Label {
    if bytes.len() <= MAX_LABEL && bytes.is_ascii() {
        let mut stack = [0u8; MAX_LABEL];
        let dst = &mut stack[..bytes.len()];
        dst.copy_from_slice(bytes);
        dst.make_ascii_lowercase();
        let s = std::str::from_utf8(dst).expect("ASCII is valid UTF-8");
        intern(s)
    } else {
        // Replacement characters and oversized input: rare, cold, allowed
        // to allocate a scratch string before interning.
        let _cold = dohperf_telemetry::alloc::exempt_scope();
        let s = String::from_utf8_lossy(bytes).to_ascii_lowercase();
        intern(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_to_one_pointer() {
        let a = intern("example");
        let b = intern("example");
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_labels_differ() {
        assert_ne!(intern("alpha"), intern("beta"));
        assert!(intern("alpha") < intern("beta"));
    }

    #[test]
    fn byte_interning_lowercases_ascii() {
        assert_eq!(intern_bytes_lossy_lower(b"WWW"), intern("www"));
        assert_eq!(intern_bytes_lossy_lower(b"MiXeD-09"), intern("mixed-09"));
    }

    #[test]
    fn non_ascii_bytes_match_the_lossy_string_path() {
        let raw: &[u8] = &[0x66, 0xff, 0x6f]; // f <invalid> o
        let expected = String::from_utf8_lossy(raw).to_ascii_lowercase();
        assert_eq!(intern_bytes_lossy_lower(raw).as_str(), expected);
    }

    #[test]
    fn hash_matches_str_hash() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h1 = {
            let mut h = DefaultHasher::new();
            intern("www").hash(&mut h);
            h.finish()
        };
        let h2 = {
            let mut h = DefaultHasher::new();
            "www".hash(&mut h);
            h.finish()
        };
        assert_eq!(h1, h2);
    }
}
