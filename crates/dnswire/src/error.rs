//! Error types for DNS encoding and decoding.

use std::fmt;

/// Everything that can go wrong while encoding or decoding DNS data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsError {
    /// A label exceeded 63 octets.
    LabelTooLong(usize),
    /// A full name exceeded 255 octets.
    NameTooLong(usize),
    /// A label contained a forbidden byte.
    InvalidLabel(String),
    /// An empty label appeared somewhere other than the root.
    EmptyLabel,
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A compression pointer pointed forward or formed a loop.
    BadCompressionPointer(u16),
    /// Too many compression hops (loop protection).
    CompressionLoop,
    /// An unknown or unsupported value in a typed field.
    UnsupportedValue(&'static str, u32),
    /// RDATA length did not match the declared RDLENGTH.
    RdataLengthMismatch { declared: usize, actual: usize },
    /// The message would exceed the maximum encodable size.
    MessageTooLong(usize),
    /// Invalid base64url input (DoH GET payload).
    BadBase64(String),
    /// A malformed DoH request (missing parameter, wrong content type…).
    BadDohRequest(String),
    /// A TXT character-string exceeded 255 octets.
    TxtSegmentTooLong(usize),
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            DnsError::NameTooLong(n) => write!(f, "name of {n} octets exceeds 255"),
            DnsError::InvalidLabel(l) => write!(f, "invalid label {l:?}"),
            DnsError::EmptyLabel => write!(f, "empty label inside a name"),
            DnsError::Truncated => write!(f, "message truncated"),
            DnsError::BadCompressionPointer(p) => write!(f, "bad compression pointer to {p}"),
            DnsError::CompressionLoop => write!(f, "compression pointer loop"),
            DnsError::UnsupportedValue(what, v) => write!(f, "unsupported {what} value {v}"),
            DnsError::RdataLengthMismatch { declared, actual } => {
                write!(
                    f,
                    "rdata length mismatch: declared {declared}, actual {actual}"
                )
            }
            DnsError::MessageTooLong(n) => write!(f, "message of {n} octets too long"),
            DnsError::BadBase64(s) => write!(f, "invalid base64url: {s}"),
            DnsError::BadDohRequest(s) => write!(f, "malformed DoH request: {s}"),
            DnsError::TxtSegmentTooLong(n) => write!(f, "TXT segment of {n} octets exceeds 255"),
        }
    }
}

impl std::error::Error for DnsError {}
