//! Multi-transport measurement with an explicit connection lifecycle.
//!
//! The legacy [`crate::network`] choreography reproduces the paper's
//! Figure 2 tunnel methodology for DoH and Do53. This module adds the
//! extended campaign's transport comparison: the same provider PoP is
//! queried over each of the four DNS transports — Do53 (plain UDP to
//! the provider's public resolver), DoH, DoT and DoQ — driving the
//! [`Connection`] state machine through its full lifecycle so every
//! observation records a **cold**, **warm** and **resumed** query on
//! the same (client, provider) pair.
//!
//! Unlike the tunnel methodology, these measurements are taken at the
//! exit node itself (the simulator can observe exit-local time
//! directly, so no header algebra is needed); the timestamp algebra
//! over the lifecycle phases lives in `dohperf_core::equations` as the
//! Eq 1–8 analogues for the new transports.
//!
//! Determinism contract (DESIGN.md §13): this path consumes only the
//! `SimRng` handed to it — campaigns pass a fresh
//! `fork_parts`-derived stream per (client, provider, transport) — and
//! the connection state machine itself consumes no randomness, so
//! enabling the extra transports never perturbs the legacy DoH/Do53
//! draw sequences.

use crate::exitnode::ExitNode;
use crate::network::BrightDataNetwork;
use dohperf_netsim::connection::{Connection, DnsTransport, Warmth};
use dohperf_netsim::engine::Simulator;
use dohperf_netsim::rng::SimRng;
use dohperf_netsim::time::{SimDuration, SimTime};
use dohperf_netsim::topology::NodeId;
use dohperf_providers::pops::PopDeployment;
use dohperf_providers::provider::ProviderKind;
use dohperf_telemetry::flight;
use serde::{Deserialize, Serialize};

/// Probability the exit node's resolver has the provider's bootstrap
/// A record cached (mirrors the legacy DoH path).
const BOOTSTRAP_CACHE_HIT_P: f64 = 0.8;

/// One transport's full connection-lifecycle observation for one
/// (client, provider) pair: timestamps bracketing the cold handshake
/// and the cold/warm/resumed queries, plus the per-phase framing
/// components (needed by the differential protocol tests, which assert
/// that warm DoT and warm DoH agree *minus the H2 framing delta*).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransportObservation {
    /// Which transport carried the queries.
    pub transport: DnsTransport,
    /// Lifecycle start: bootstrap resolution begins.
    pub t_a: SimTime,
    /// Bootstrap done; the cold handshake's first flight departs.
    pub t_bs: SimTime,
    /// Cold handshake complete; the connection is established.
    pub t_hs: SimTime,
    /// Cold query answered.
    pub t_cold_done: SimTime,
    /// Warm query issued on the established connection.
    pub t_warm_start: SimTime,
    /// Warm query answered.
    pub t_warm_done: SimTime,
    /// Resumed phase starts (the connection has idled out).
    pub t_resumed_start: SimTime,
    /// Abbreviated re-establishment complete.
    pub t_resumed_hs: SimTime,
    /// Resumed query answered.
    pub t_resumed_done: SimTime,
    /// Application-framing component of the cold query.
    pub cold_framing: SimDuration,
    /// Application-framing component of the warm query.
    pub warm_framing: SimDuration,
    /// Application-framing component of the resumed query.
    pub resumed_framing: SimDuration,
    /// Connection generation servicing the cold and warm queries.
    pub cold_generation: u32,
    /// Connection generation after the post-timeout re-establishment.
    pub resumed_generation: u32,
}

/// One query on an acquired connection: request leg, framing, optional
/// loss stall, recursion to the authoritative, provider processing.
struct QueryOutcome {
    elapsed: SimDuration,
    framing: SimDuration,
}

#[allow(clippy::too_many_arguments)]
fn transport_query(
    sim: &mut Simulator,
    exit: &ExitNode,
    pop: NodeId,
    auth: NodeId,
    provider: ProviderKind,
    transport: DnsTransport,
    extra_loss_p: f64,
    cache_hit_p: f64,
    rng: &mut SimRng,
) -> QueryOutcome {
    let mut leg = sim.rtt(exit.node, pop);
    let framing = exit.https_overhead(rng).mul_f64(transport.framing_factor());
    if rng.chance(extra_loss_p) {
        match transport {
            DnsTransport::Do53 => {
                // A lost datagram burns the stub retransmission timer.
                dohperf_telemetry::counter!("proxy.transport_udp_timeouts").inc();
                leg += dohperf_netsim::transport::UDP_RETRY_TIMEOUT;
            }
            DnsTransport::DoH | DnsTransport::DoT => {
                // TCP head-of-line blocking: every stream stalls for
                // detection + retransmission (≈2 RTTs).
                dohperf_telemetry::counter!("proxy.h2_loss_stalls").inc();
                for _ in 0..transport.loss_stall_rtts() {
                    leg += sim.rtt(exit.node, pop);
                }
            }
            DnsTransport::DoQ => {
                // QUIC recovers inside the affected stream (≈1 RTT).
                dohperf_telemetry::counter!("proxy.quic_loss_stalls").inc();
                for _ in 0..transport.loss_stall_rtts() {
                    leg += sim.rtt(exit.node, pop);
                }
            }
        }
    }
    let cache_hit = rng.chance(cache_hit_p);
    let recursion = if cache_hit {
        SimDuration::ZERO
    } else {
        sim.rtt(pop, auth)
    };
    let processing = if cache_hit {
        SimDuration::from_millis_f64(rng.lognormal_median(1.5, 0.3))
    } else {
        provider.processing_time(rng) + provider.forwarding_penalty(exit.id, rng)
    };
    let elapsed = leg + framing + recursion + processing;
    sim.advance(elapsed);
    QueryOutcome { elapsed, framing }
}

/// Charge the handshake bill for one acquisition: `handshake_rtts`
/// sampled round trips plus (on full handshakes of encrypted
/// transports) the endpoint crypto overhead. Resumed handshakes are
/// ticket-based and skip the asymmetric crypto.
fn handshake_bill(
    sim: &mut Simulator,
    exit: &ExitNode,
    pop: NodeId,
    transport: DnsTransport,
    warmth: Warmth,
    rng: &mut SimRng,
) -> SimDuration {
    let mut cost = SimDuration::ZERO;
    for _ in 0..transport.handshake_rtts(warmth) {
        cost += sim.rtt(exit.node, pop);
    }
    if transport.is_encrypted() && warmth == Warmth::Cold {
        cost += exit.handshake_crypto_overhead(rng);
    }
    sim.advance(cost);
    cost
}

impl BrightDataNetwork {
    /// Measure one transport's full connection lifecycle against a
    /// provider PoP: cold handshake + query, warm reuse, deterministic
    /// idle timeout, resumed re-establishment + query.
    ///
    /// `rng` must be a dedicated fork — the campaign derives one per
    /// (client, provider, transport) so these draws never perturb the
    /// legacy measurement lineage.
    #[allow(clippy::too_many_arguments)]
    pub fn transport_measurement(
        &self,
        sim: &mut Simulator,
        exit: &ExitNode,
        provider: ProviderKind,
        deployment: &PopDeployment,
        pop_index: usize,
        auth: NodeId,
        transport: DnsTransport,
        extra_loss_p: f64,
        cache_hit_p: f64,
        rng: &mut SimRng,
    ) -> TransportObservation {
        let pop = deployment.sites[pop_index].node;
        dohperf_telemetry::counter!("proxy.transport_measurements").inc();
        let recording = flight::active();
        let mut conn = Connection::new(transport);

        let t_a = sim.now();
        let span = if recording {
            flight::start_span(
                "proxy",
                format!("transport {} {}", transport.name(), provider.hostname()),
                t_a.as_nanos(),
            )
        } else {
            flight::SpanToken::NOOP
        };

        // Bootstrap: resolve the provider hostname (encrypted transports
        // only; plain Do53 targets the resolver address directly).
        let bootstrap = if transport.is_encrypted() {
            exit.do53_bootstrap(sim, pop, provider.hostname(), BOOTSTRAP_CACHE_HIT_P, rng)
        } else {
            SimDuration::ZERO
        };
        sim.advance(bootstrap);
        let t_bs = sim.now();

        // Cold handshake.
        let cold = conn.acquire(t_bs);
        debug_assert_eq!(cold.warmth, Warmth::Cold);
        let hs_span = if recording {
            flight::start_span(
                "proxy",
                format!("{}-handshake (cold)", transport.name()),
                t_bs.as_nanos(),
            )
        } else {
            flight::SpanToken::NOOP
        };
        let hs_cost = handshake_bill(sim, exit, pop, transport, cold.warmth, rng);
        let t_hs = sim.now();
        if recording {
            flight::attr(hs_span, "warmth", cold.warmth.name());
            flight::attr(hs_span, "generation", format!("{}", cold.generation));
            flight::attr(
                hs_span,
                "handshake_rtts",
                format!("{}", transport.handshake_rtts(cold.warmth)),
            );
            flight::attr(
                hs_span,
                "handshake_ms",
                format!("{}", hs_cost.as_millis_f64()),
            );
            flight::end_span(hs_span, t_hs.as_nanos());
        }

        // Cold query on the new connection.
        let cold_q = transport_query(
            sim,
            exit,
            pop,
            auth,
            provider,
            transport,
            extra_loss_p,
            cache_hit_p,
            rng,
        );
        let t_cold_done = sim.now();

        // Warm reuse inside the keep-alive window.
        let t_warm_start = sim.now();
        let warm = conn.acquire(t_warm_start);
        debug_assert_eq!(warm.warmth, Warmth::Warm);
        debug_assert_eq!(warm.generation, cold.generation);
        let _ = warm;
        let warm_q = transport_query(
            sim,
            exit,
            pop,
            auth,
            provider,
            transport,
            extra_loss_p,
            cache_hit_p,
            rng,
        );
        let t_warm_done = sim.now();

        // Let the connection idle out, then resume with the session
        // ticket (TLS 1.3 PSK over a fresh TCP handshake; QUIC 0-RTT).
        // Do53 has no connection to expire: its "resumed" query is just
        // another stand-alone datagram after a short gap.
        let idle_gap = if transport.is_encrypted() {
            transport.idle_timeout() + SimDuration::from_millis(1)
        } else {
            SimDuration::from_millis(1)
        };
        sim.advance(idle_gap);
        let t_resumed_start = sim.now();
        let resumed = conn.acquire(t_resumed_start);
        debug_assert_eq!(
            resumed.warmth,
            if transport.is_encrypted() {
                Warmth::Resumed
            } else {
                Warmth::Warm
            }
        );
        let resumed_span = if recording {
            flight::start_span(
                "proxy",
                format!("{}-handshake (resumed)", transport.name()),
                t_resumed_start.as_nanos(),
            )
        } else {
            flight::SpanToken::NOOP
        };
        let resumed_cost = handshake_bill(sim, exit, pop, transport, Warmth::Resumed, rng);
        let t_resumed_hs = sim.now();
        if transport.is_encrypted() {
            dohperf_telemetry::counter!("proxy.transport_resumptions").inc();
        }
        if recording {
            flight::attr(resumed_span, "warmth", resumed.warmth.name());
            flight::attr(
                resumed_span,
                "generation",
                format!("{}", resumed.generation),
            );
            flight::attr(
                resumed_span,
                "handshake_rtts",
                format!("{}", transport.handshake_rtts(Warmth::Resumed)),
            );
            flight::attr(
                resumed_span,
                "handshake_ms",
                format!("{}", resumed_cost.as_millis_f64()),
            );
            flight::end_span(resumed_span, t_resumed_hs.as_nanos());
        }
        let resumed_q = transport_query(
            sim,
            exit,
            pop,
            auth,
            provider,
            transport,
            extra_loss_p,
            cache_hit_p,
            rng,
        );
        let t_resumed_done = sim.now();

        if recording {
            flight::attr(span, "transport", transport.name());
            flight::attr(span, "rfc", transport.rfc());
            flight::attr(
                span,
                "cold_ms",
                format!("{}", t_cold_done.saturating_since(t_a).as_millis_f64()),
            );
            flight::attr(
                span,
                "warm_ms",
                format!("{}", warm_q.elapsed.as_millis_f64()),
            );
            flight::attr(
                span,
                "resumed_ms",
                format!(
                    "{}",
                    t_resumed_done
                        .saturating_since(t_resumed_start)
                        .as_millis_f64()
                ),
            );
            flight::end_span(span, t_resumed_done.as_nanos());
        }

        TransportObservation {
            transport,
            t_a,
            t_bs,
            t_hs,
            t_cold_done,
            t_warm_start,
            t_warm_done,
            t_resumed_start,
            t_resumed_hs,
            t_resumed_done,
            cold_framing: cold_q.framing,
            warm_framing: warm_q.framing,
            resumed_framing: resumed_q.framing,
            cold_generation: cold.generation,
            resumed_generation: resumed.generation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohperf_netsim::topology::{GeoPoint, NodeRole, NodeSpec};
    use dohperf_world::countries::country;
    use dohperf_world::geoloc::GeolocationService;

    struct Fixture {
        sim: Simulator,
        network: BrightDataNetwork,
        auth: NodeId,
        deployment: PopDeployment,
    }

    /// Deterministic fixture: two fixtures built with the same seed are
    /// twin simulators with identical internal RNG state, which the
    /// differential tests rely on.
    fn fixture(seed: u64) -> Fixture {
        let mut sim = Simulator::new(seed);
        let network = BrightDataNetwork::deploy(&mut sim);
        let us = country("US").unwrap();
        let auth = sim.add_node(
            NodeSpec::new(
                "auth-ns",
                GeoPoint::new(39.0, -77.5),
                NodeRole::AuthoritativeNs,
            )
            .with_infra(us.datacenter_profile()),
        );
        let deployment = PopDeployment::deploy(ProviderKind::Cloudflare, &mut sim);
        Fixture {
            sim,
            network,
            auth,
            deployment,
        }
    }

    fn exit_in(fx: &mut Fixture, iso: &str, id: u64) -> ExitNode {
        let c = country(iso).unwrap();
        let mut geoloc = GeolocationService::new(SimRng::new(id), 0.0, vec!["BR", "US"]);
        let mut rng = SimRng::new(id);
        ExitNode::create(&mut fx.sim, &mut geoloc, c, 0, c.centroid(), id, &mut rng)
    }

    /// Run one lifecycle measurement on a fresh twin fixture.
    fn measure(
        seed: u64,
        rng_seed: u64,
        transport: DnsTransport,
        loss: f64,
    ) -> TransportObservation {
        let mut fx = fixture(seed);
        let exit = exit_in(&mut fx, "BR", 1);
        let pop_index = fx.deployment.nearest_index(&exit.position);
        let mut rng = SimRng::new(rng_seed);
        fx.network.transport_measurement(
            &mut fx.sim,
            &exit,
            ProviderKind::Cloudflare,
            &fx.deployment,
            pop_index,
            fx.auth,
            transport,
            loss,
            0.0,
            &mut rng,
        )
    }

    fn ms(d: SimDuration) -> f64 {
        d.as_millis_f64()
    }

    #[test]
    fn lifecycle_observation_is_ordered() {
        let obs = measure(77, 5, DnsTransport::DoT, 0.0);
        assert!(obs.t_a <= obs.t_bs);
        assert!(obs.t_bs < obs.t_hs, "cold handshake takes time");
        assert!(obs.t_hs < obs.t_cold_done);
        assert!(obs.t_warm_start < obs.t_warm_done);
        assert!(obs.t_resumed_start < obs.t_resumed_hs, "resumed TCP rtt");
        assert!(obs.t_resumed_hs < obs.t_resumed_done);
        assert_eq!(obs.cold_generation, 1);
        assert_eq!(obs.resumed_generation, 2, "timeout bumps the generation");
    }

    #[test]
    fn doq_resumption_is_zero_rtt() {
        let obs = measure(77, 5, DnsTransport::DoQ, 0.0);
        // 0-RTT: the re-establishment itself costs nothing; the query
        // rides in the first flight.
        assert_eq!(obs.t_resumed_start, obs.t_resumed_hs);
        assert_eq!(obs.resumed_generation, 2);
    }

    #[test]
    fn measurement_is_deterministic() {
        let a = measure(21, 9, DnsTransport::DoQ, 0.1);
        let b = measure(21, 9, DnsTransport::DoQ, 0.1);
        assert_eq!(a, b);
    }

    /// Satellite (differential suite): with identical RNG lineage and a
    /// zero-loss network, warm DoT and warm DoH (a single H2 stream)
    /// derive the identical transport time minus the H2 framing delta —
    /// and the same holds for the cold and resumed queries, since
    /// DoH/DoT share the TCP+TLS handshake structure.
    #[test]
    fn warm_dot_equals_warm_doh_minus_framing_delta() {
        for (sim_seed, rng_seed) in [(77, 5), (21, 9), (1234, 42), (9, 1)] {
            let doh = measure(sim_seed, rng_seed, DnsTransport::DoH, 0.0);
            let dot = measure(sim_seed, rng_seed, DnsTransport::DoT, 0.0);

            let doh_warm = ms(doh.t_warm_done.saturating_since(doh.t_warm_start));
            let dot_warm = ms(dot.t_warm_done.saturating_since(dot.t_warm_start));
            // Identical draws, so the only difference is the framing.
            assert!(
                (doh_warm - ms(doh.warm_framing) - (dot_warm - ms(dot.warm_framing))).abs() < 1e-6,
                "seed ({sim_seed},{rng_seed}): doh {doh_warm} dot {dot_warm}"
            );
            assert!(
                ms(doh.warm_framing) > ms(dot.warm_framing),
                "H2 frames heavier"
            );

            let doh_cold = ms(doh.t_cold_done.saturating_since(doh.t_a));
            let dot_cold = ms(dot.t_cold_done.saturating_since(dot.t_a));
            assert!(
                (doh_cold - ms(doh.cold_framing) - (dot_cold - ms(dot.cold_framing))).abs() < 1e-6,
                "cold paths diverged beyond framing"
            );
        }
    }

    /// Satellite (differential suite): DoQ 0-RTT ≤ DoQ 1-RTT ≤ DoT cold
    /// handshake, pointwise on twin simulators (the shared draws make
    /// the comparison exact, not statistical).
    #[test]
    fn doq_handshake_monotonicity_pointwise() {
        for (sim_seed, rng_seed) in [(77, 5), (21, 9), (1234, 42), (9, 1), (400, 8)] {
            let doq = measure(sim_seed, rng_seed, DnsTransport::DoQ, 0.0);
            let dot = measure(sim_seed, rng_seed, DnsTransport::DoT, 0.0);
            let doq_zero_rtt = ms(doq.t_resumed_hs.saturating_since(doq.t_resumed_start));
            let doq_one_rtt = ms(doq.t_hs.saturating_since(doq.t_bs));
            let dot_cold = ms(dot.t_hs.saturating_since(dot.t_bs));
            assert!(
                doq_zero_rtt <= doq_one_rtt,
                "0-RTT {doq_zero_rtt} > 1-RTT {doq_one_rtt}"
            );
            assert!(
                doq_one_rtt <= dot_cold,
                "DoQ cold {doq_one_rtt} > DoT cold {dot_cold}"
            );
        }
    }

    /// Satellite (lifecycle suite): the fault injector's loss knob
    /// separates H2 from QUIC. The loss *pattern* is shared (the chance
    /// draws come from the aligned measurement rng), but each loss event
    /// stalls TCP-based DoH for ~2 RTTs versus ~1 for QUIC, so DoH's
    /// tail is strictly heavier.
    #[test]
    fn loss_separates_h2_from_quic_tails() {
        let loss = 0.35;
        let mut doh_warm = Vec::new();
        let mut doq_warm = Vec::new();
        for rng_seed in 0..60 {
            let doh = measure(500 + rng_seed, rng_seed, DnsTransport::DoH, loss);
            let doq = measure(500 + rng_seed, rng_seed, DnsTransport::DoQ, loss);
            // Subtract framing so only loss recovery and shared draws
            // remain in the comparison.
            doh_warm.push(
                ms(doh.t_warm_done.saturating_since(doh.t_warm_start)) - ms(doh.warm_framing),
            );
            doq_warm.push(
                ms(doq.t_warm_done.saturating_since(doq.t_warm_start)) - ms(doq.warm_framing),
            );
        }
        let tail = |xs: &mut Vec<f64>| {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs[(xs.len() as f64 * 0.9) as usize]
        };
        let doh_p90 = tail(&mut doh_warm);
        let doq_p90 = tail(&mut doq_warm);
        assert!(
            doh_p90 > doq_p90,
            "H2 tail {doh_p90} should exceed QUIC tail {doq_p90} under loss"
        );
    }

    #[test]
    fn zero_loss_never_stalls() {
        let sums: f64 = (0..10)
            .map(|s| {
                let doh = measure(600 + s, s, DnsTransport::DoH, 0.0);
                let doq = measure(600 + s, s, DnsTransport::DoQ, 0.0);
                ms(doh.t_warm_done.saturating_since(doh.t_warm_start))
                    + ms(doq.t_warm_done.saturating_since(doq.t_warm_start))
            })
            .sum();
        assert!(sums > 0.0);
        // No UDP timer is ever burned without loss.
        let obs = measure(700, 3, DnsTransport::Do53, 0.0);
        assert!(ms(obs.t_warm_done.saturating_since(obs.t_warm_start)) < 1000.0);
    }
}
