//! # dohperf-proxy
//!
//! The measurement-platform substrates the paper relied on:
//!
//! * [`superproxy`] — BrightData Super Proxies, deployed in the 11
//!   countries the paper documents (§3.5). In these countries the Super
//!   Proxy, not the exit node, performs Do53 resolution — the quirk that
//!   invalidates proxy-header Do53 data there and forces the RIPE Atlas
//!   remedy.
//! * [`exitnode`] — residential exit nodes: a client machine, its default
//!   ISP resolver, and its /24 prefix as seen by geolocation.
//! * [`observation`] — what one tunnelled measurement *looks like* from
//!   the outside: the four client-side timestamps T_A–T_D and the
//!   `X-luminati-*` headers (plus hidden ground truth used only by the
//!   §4 validation experiments).
//! * [`network`] — the BrightData network: exit pools per country,
//!   exit-node selection, and the full Figure 2 choreography for DoH and
//!   Do53 measurements.
//! * [`atlas`] — a RIPE Atlas-style probe network supporting direct Do53
//!   measurements (no proxy in the path).

pub mod atlas;
pub mod exitnode;
pub mod lifecycle;
pub mod network;
pub mod observation;
pub mod superproxy;

pub use atlas::{AtlasNetwork, AtlasProbe};
pub use exitnode::ExitNode;
pub use lifecycle::TransportObservation;
pub use network::BrightDataNetwork;
pub use observation::{Do53Observation, DohObservation};
pub use superproxy::SuperProxy;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::atlas::{AtlasNetwork, AtlasProbe};
    pub use crate::exitnode::ExitNode;
    pub use crate::lifecycle::TransportObservation;
    pub use crate::network::BrightDataNetwork;
    pub use crate::observation::{Do53Observation, DohObservation};
    pub use crate::superproxy::SuperProxy;
}
