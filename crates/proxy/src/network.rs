//! The BrightData network choreography.
//!
//! Implements the 22-step Figure 2 timeline on the simulator and returns
//! the observables a real measurement client would see. Every leg of the
//! path is sampled from the latency model independently (with jitter), so
//! the paper's stability assumptions hold only approximately — exactly as
//! in the real network — and the §4 ground-truth validation becomes a
//! meaningful test of the Equation 7/8 derivation rather than a tautology.

use crate::exitnode::ExitNode;
use crate::observation::{Do53Observation, DohObservation};
use crate::superproxy::{nearest_super_proxy, SuperProxy};
use dohperf_http::luminati::TunTimeline;
use dohperf_netsim::engine::Simulator;
use dohperf_netsim::rng::SimRng;
use dohperf_netsim::time::SimDuration;
use dohperf_netsim::topology::NodeId;
use dohperf_netsim::transport::TlsVersion;
use dohperf_providers::pops::PopDeployment;
use dohperf_providers::provider::ProviderKind;
use dohperf_telemetry::flight;
use serde::{Deserialize, Serialize};

/// Probability the exit node's resolver has a DoH provider's bootstrap
/// A record cached (popular hostnames are nearly always warm).
const BOOTSTRAP_CACHE_HIT_P: f64 = 0.8;

/// Which encrypted transport carries the DNS query.
///
/// The paper measures DoH; DoT (RFC 7858) shares the TCP+TLS handshake
/// structure but frames queries with a 2-octet length prefix on port 853
/// instead of HTTP on 443. Two behavioural differences matter here:
/// lighter per-query framing (no HTTP request/response headers), and
/// exposure to port-based middlebox interference that port 443 does not
/// suffer (§2's reason DoH won deployment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncryptedProtocol {
    /// DNS over HTTPS (RFC 8484) — the paper's subject.
    DoH,
    /// DNS over TLS (RFC 7858) — the Doan et al. comparison point.
    DoT,
}

/// Fraction of DoT's per-query framing overhead relative to DoH's (no
/// HTTP headers to serialise or parse).
const DOT_OVERHEAD_FACTOR: f64 = 0.65;

/// Probability a middlebox interferes with port 853 in restrictive
/// networks (per-query extra RTT-scale delay; DoH's 443 is untouched).
const DOT_MIDDLEBOX_P: f64 = 0.03;

/// Knobs for ablation studies (§7 of the paper and DESIGN.md).
///
/// The defaults reproduce the paper's methodology exactly: TLS 1.3 and
/// guaranteed cache misses (fresh UUID subdomains).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurementOptions {
    /// TLS version for the DoH session. The paper measures 1.3 only and
    /// notes 1.2 clients "will have slower DoH performance overall";
    /// selecting 1.2 adds the second handshake round trip — and, exactly
    /// as in the real methodology, Equation 7 then *overestimates* t_DoH
    /// by one tunnel RTT because the derivation hard-codes a one-RTT
    /// handshake.
    pub tls: TlsVersion,
    /// Probability the DoH provider answers from cache (no recursion to
    /// the authoritative). 0.0 = the paper's forced cache misses.
    pub doh_cache_hit_p: f64,
    /// Probability the ISP resolver answers from cache.
    pub do53_cache_hit_p: f64,
    /// Encrypted transport for the measurement.
    pub protocol: EncryptedProtocol,
    /// Extra per-query packet-loss probability injected on the access
    /// link (ablation). Loss hurts the two transports asymmetrically:
    /// a lost Do53 datagram costs a full stub retransmission timeout
    /// (~1s), while a lost TCP segment inside a DoH exchange is repaired
    /// by fast retransmit in roughly one extra round trip.
    pub extra_loss_p: f64,
}

impl Default for MeasurementOptions {
    fn default() -> Self {
        MeasurementOptions {
            tls: TlsVersion::V1_3,
            doh_cache_hit_p: 0.0,
            do53_cache_hit_p: 0.0,
            extra_loss_p: 0.0,
            protocol: EncryptedProtocol::DoH,
        }
    }
}

/// Small per-pass forwarding overhead on BrightData boxes after tunnel
/// establishment. The paper's Assumption 2 says this is negligible; we
/// make it small-but-nonzero so the validation measures a real error.
fn forwarding_overhead(rng: &mut SimRng) -> SimDuration {
    SimDuration::from_millis_f64(rng.lognormal_median(0.4, 0.4))
}

/// The deployed BrightData network.
#[derive(Debug)]
pub struct BrightDataNetwork {
    /// Super Proxy fleet (11 countries).
    pub super_proxies: Vec<SuperProxy>,
}

impl BrightDataNetwork {
    /// Deploy the Super Proxy fleet.
    pub fn deploy(sim: &mut Simulator) -> Self {
        BrightDataNetwork {
            super_proxies: SuperProxy::deploy_fleet(sim),
        }
    }

    /// The Super Proxy that will serve a given measurement client.
    pub fn super_proxy_for(&self, sim: &Simulator, client: NodeId) -> SuperProxy {
        let pos = sim.topology().node(client).spec.position;
        *nearest_super_proxy(&self.super_proxies, &pos)
    }

    /// Round trip of the CONNECT tunnel path: client ↔ Super Proxy ↔ exit.
    fn tunnel_rtt(sim: &mut Simulator, client: NodeId, sp: NodeId, exit: NodeId) -> SimDuration {
        sim.rtt(client, sp) + sim.rtt(sp, exit)
    }

    /// Run one DoH measurement through the tunnel (Figure 2, steps 1–22).
    ///
    /// * `client` — the measurement client (authors' machine in the US).
    /// * `exit` — the selected exit node.
    /// * `deployment`/`pop_index` — the provider PoP serving this client.
    /// * `auth` — the experiment's authoritative name server.
    #[allow(clippy::too_many_arguments)]
    pub fn doh_measurement(
        &self,
        sim: &mut Simulator,
        client: NodeId,
        exit: &ExitNode,
        provider: ProviderKind,
        deployment: &PopDeployment,
        pop_index: usize,
        auth: NodeId,
        rng: &mut SimRng,
    ) -> DohObservation {
        self.doh_measurement_with(
            sim,
            client,
            exit,
            provider,
            deployment,
            pop_index,
            auth,
            rng,
            &MeasurementOptions::default(),
        )
    }

    /// [`Self::doh_measurement`] with explicit [`MeasurementOptions`]
    /// (TLS version and cache behaviour) for ablation studies.
    #[allow(clippy::too_many_arguments)]
    pub fn doh_measurement_with(
        &self,
        sim: &mut Simulator,
        client: NodeId,
        exit: &ExitNode,
        provider: ProviderKind,
        deployment: &PopDeployment,
        pop_index: usize,
        auth: NodeId,
        rng: &mut SimRng,
        opts: &MeasurementOptions,
    ) -> DohObservation {
        let sp = self.super_proxy_for(sim, client);
        let pop = deployment.sites[pop_index].node;
        dohperf_telemetry::counter!("proxy.connect_tunnels").inc();
        let recording = flight::active();

        // --- Steps 1–8: establish the TCP tunnel. ---
        let t_a = sim.now();
        let doh_span = if recording {
            flight::start_span(
                "proxy",
                format!("doh {}", provider.hostname()),
                t_a.as_nanos(),
            )
        } else {
            flight::SpanToken::NOOP
        };
        let connect_span = if recording {
            flight::start_span("proxy", "connect-tunnel (steps 1-8)", t_a.as_nanos())
        } else {
            flight::SpanToken::NOOP
        };
        let proxy_timeline = SuperProxy::processing_timeline(rng);
        // t3+t4: bootstrap-resolve the provider hostname at the exit node.
        let dns_bootstrap =
            exit.do53_bootstrap(sim, pop, provider.hostname(), BOOTSTRAP_CACHE_HIT_P, rng);
        // t5+t6: exit connects to the DoH PoP.
        let tcp_connect = exit.tcp_connect(sim, pop);
        let tunnel_rtt_1 = Self::tunnel_rtt(sim, client, sp.node, exit.node);
        let phase1 = tunnel_rtt_1 + proxy_timeline.total() + dns_bootstrap + tcp_connect;
        sim.advance(phase1);
        let t_b = sim.now();
        if recording {
            flight::attr(
                connect_span,
                "tunnel_rtt_ms",
                format!("{}", tunnel_rtt_1.as_millis_f64()),
            );
            // Header timestamps as span events, offset from T_A: the
            // tunnel components from X-Luminati-Tun-Timeline and the
            // BrightData-box components from X-Luminati-Timeline.
            TunTimeline {
                dns: dns_bootstrap,
                connect: tcp_connect,
            }
            .annotate_flight(connect_span, t_a.as_nanos());
            proxy_timeline.annotate_flight(connect_span, t_a.as_nanos());
            flight::end_span(connect_span, t_b.as_nanos());
        }

        // --- Steps 9–14: the TLS handshake (one round trip for 1.3; a
        // TLS 1.2 ablation pays a second round trip). ---
        let t_c = t_b; // ClientHello is sent immediately.
        let tls_span = if recording {
            flight::start_span("proxy", "tls-handshake (steps 9-14)", t_c.as_nanos())
        } else {
            flight::SpanToken::NOOP
        };
        let tunnel_rtt_2 = Self::tunnel_rtt(sim, client, sp.node, exit.node);
        let framing = |d: SimDuration| match opts.protocol {
            EncryptedProtocol::DoH => d,
            EncryptedProtocol::DoT => d.mul_f64(DOT_OVERHEAD_FACTOR),
        };
        let mut tls_leg = sim.rtt(exit.node, pop)
            + framing(exit.https_overhead(rng))
            + exit.handshake_crypto_overhead(rng); // t11+t12
        sim.trace_packet(exit.node, pop, "tls", "ClientHello");
        let overhead_2 = forwarding_overhead(rng);
        sim.advance(tunnel_rtt_2 + tls_leg + overhead_2);
        if opts.tls == TlsVersion::V1_2 {
            // Second handshake flight: another tunnel RTT and exit<->PoP leg.
            let tunnel_rtt_extra = Self::tunnel_rtt(sim, client, sp.node, exit.node);
            let tls_leg_2 = sim.rtt(exit.node, pop);
            sim.trace_packet(exit.node, pop, "tls", "ClientKeyExchange");
            sim.advance(tunnel_rtt_extra + tls_leg_2);
            tls_leg += tls_leg_2;
        }
        if recording {
            flight::attr(tls_span, "tls_version", format!("{:?}", opts.tls));
            flight::attr(
                tls_span,
                "tls_leg_ms",
                format!("{}", tls_leg.as_millis_f64()),
            );
            flight::end_span(tls_span, sim.now().as_nanos());
        }

        // --- Steps 15–22: the DoH query itself. ---
        let query_start = sim.now();
        let query_span = if recording {
            flight::start_span("proxy", "doh-query (steps 15-22)", query_start.as_nanos())
        } else {
            flight::SpanToken::NOOP
        };
        let tunnel_rtt_3 = Self::tunnel_rtt(sim, client, sp.node, exit.node);
        let mut query_leg = sim.rtt(exit.node, pop) + framing(exit.https_overhead(rng)); // t17 + t20
        if rng.chance(opts.extra_loss_p) {
            // TCP fast retransmit: one extra round trip, not a timer.
            dohperf_telemetry::counter!("proxy.doh_fast_retransmits").inc();
            query_leg += sim.rtt(exit.node, pop);
        }
        if opts.protocol == EncryptedProtocol::DoT && rng.chance(DOT_MIDDLEBOX_P) {
            // Port-853 middlebox interference: an extra round trip of
            // stalling that port 443 does not see (§2).
            query_leg += sim.rtt(exit.node, pop);
        }
        let doh_cache_hit = rng.chance(opts.doh_cache_hit_p);
        let recursion = if doh_cache_hit {
            SimDuration::ZERO
        } else {
            sim.rtt(pop, auth) // t18 + t19
        };
        let processing = if doh_cache_hit {
            SimDuration::from_millis_f64(rng.lognormal_median(1.5, 0.3))
        } else {
            provider.processing_time(rng) + provider.forwarding_penalty(exit.id, rng)
        };
        sim.trace_packet(exit.node, pop, "http", "GET /dns-query");
        if !doh_cache_hit {
            sim.trace_packet(pop, auth, "dns/udp", "recursion");
        }
        let overhead_3 = forwarding_overhead(rng);
        sim.advance(tunnel_rtt_3 + query_leg + recursion + processing + overhead_3);
        let t_d = sim.now();
        if recording {
            flight::attr(query_span, "cache_hit", format!("{doh_cache_hit}"));
            flight::attr(
                query_span,
                "recursion_ms",
                format!("{}", recursion.as_millis_f64()),
            );
            flight::attr(
                query_span,
                "processing_ms",
                format!("{}", processing.as_millis_f64()),
            );
            flight::end_span(query_span, t_d.as_nanos());
            flight::attr(doh_span, "T_A_ns", format!("{}", t_a.as_nanos()));
            flight::attr(doh_span, "T_B_ns", format!("{}", t_b.as_nanos()));
            flight::attr(doh_span, "T_C_ns", format!("{}", t_c.as_nanos()));
            flight::attr(doh_span, "T_D_ns", format!("{}", t_d.as_nanos()));
            flight::end_span(doh_span, t_d.as_nanos());
        }

        // Ground truth per Equation 1 (never visible to the methodology).
        let truth_t_doh =
            dns_bootstrap + tcp_connect + tls_leg + query_leg + recursion + processing;
        // Ground truth for a reused-connection query: a fresh exchange on
        // the established TLS session.
        let truth_query_leg = sim.rtt(exit.node, pop) + framing(exit.https_overhead(rng));
        let truth_cache_hit = rng.chance(opts.doh_cache_hit_p);
        let truth_recursion = if truth_cache_hit {
            SimDuration::ZERO
        } else {
            sim.rtt(pop, auth)
        };
        let truth_processing = if truth_cache_hit {
            SimDuration::from_millis_f64(rng.lognormal_median(1.5, 0.3))
        } else {
            provider.processing_time(rng) + provider.forwarding_penalty(exit.id, rng)
        };
        let truth_t_dohr = truth_query_leg + truth_recursion + truth_processing;

        DohObservation {
            t_a,
            t_b,
            t_c,
            t_d,
            tun: TunTimeline {
                dns: dns_bootstrap,
                connect: tcp_connect,
            },
            proxy: proxy_timeline,
            truth_t_doh,
            truth_t_dohr,
        }
    }

    /// Run one Do53 measurement: the exit node fetches
    /// `http://<uuid>.a.com/` through the tunnel, forcing a cache-miss
    /// Do53 resolution with its default resolver (§3.1). In Super Proxy
    /// countries the resolution happens *at the Super Proxy* (§3.5) and
    /// the header value does not reflect the exit node.
    #[allow(clippy::too_many_arguments)]
    pub fn do53_measurement(
        &self,
        sim: &mut Simulator,
        client: NodeId,
        exit: &ExitNode,
        web_server: NodeId,
        auth: NodeId,
        qname: &str,
        rng: &mut SimRng,
    ) -> Do53Observation {
        self.do53_measurement_with(
            sim,
            client,
            exit,
            web_server,
            auth,
            qname,
            rng,
            &MeasurementOptions::default(),
        )
    }

    /// [`Self::do53_measurement`] with explicit [`MeasurementOptions`]
    /// (cache behaviour) for ablation studies.
    #[allow(clippy::too_many_arguments)]
    pub fn do53_measurement_with(
        &self,
        sim: &mut Simulator,
        client: NodeId,
        exit: &ExitNode,
        web_server: NodeId,
        auth: NodeId,
        qname: &str,
        rng: &mut SimRng,
        opts: &MeasurementOptions,
    ) -> Do53Observation {
        let sp = self.super_proxy_for(sim, client);
        dohperf_telemetry::counter!("proxy.connect_tunnels").inc();
        let recording = flight::active();
        let do53_span = if recording {
            flight::start_span("proxy", format!("do53 fetch {qname}"), sim.now().as_nanos())
        } else {
            flight::SpanToken::NOOP
        };
        let fetch_start = sim.now();
        let proxy_timeline = SuperProxy::processing_timeline(rng);
        let hijacked = SuperProxy::resolves_dns_for(exit.country_iso);
        if hijacked {
            dohperf_telemetry::counter!("proxy.superproxy_dns_hijacks").inc();
        }

        // The exit node's *true* Do53 time exists either way (we need it
        // as ground truth); the header reports it only when resolution
        // actually happens at the exit node.
        let mut truth_t_do53 = if rng.chance(opts.do53_cache_hit_p) {
            // Cache hit at the ISP resolver: stub round trip plus a
            // cache-lookup-scale processing time.
            sim.rtt(exit.node, exit.resolver)
                + SimDuration::from_millis_f64(rng.lognormal_median(1.5, 0.3))
        } else {
            exit.do53_cache_miss(sim, auth, qname, rng)
        };
        if rng.chance(opts.extra_loss_p) {
            // A lost UDP datagram burns the whole retransmission timer.
            dohperf_telemetry::counter!("proxy.do53_retry_timeouts").inc();
            truth_t_do53 += dohperf_netsim::transport::UDP_RETRY_TIMEOUT;
        }

        let header_dns = if hijacked {
            // Super Proxy resolves with its data-centre resolver: a stub
            // hop inside the PoP plus recursion from the SP to the
            // authoritative server.
            let stub = SimDuration::from_millis_f64(rng.lognormal_median(1.0, 0.3));
            let recursion = sim.rtt(sp.node, auth);
            let processing = SimDuration::from_millis_f64(rng.lognormal_median(2.0, 0.3));
            stub + recursion + processing
        } else {
            truth_t_do53
        };
        let tcp_connect = exit.tcp_connect(sim, web_server);
        let tunnel_rtt = Self::tunnel_rtt(sim, client, sp.node, exit.node);
        // The fetch itself (headers only care about dns/connect).
        let fetch_leg = sim.rtt(exit.node, web_server);
        sim.advance(tunnel_rtt + proxy_timeline.total() + header_dns + tcp_connect + fetch_leg);
        if recording {
            flight::attr(do53_span, "resolved_at_super_proxy", format!("{hijacked}"));
            flight::attr(
                do53_span,
                "truth_t_do53_ms",
                format!("{}", truth_t_do53.as_millis_f64()),
            );
            TunTimeline {
                dns: header_dns,
                connect: tcp_connect,
            }
            .annotate_flight(do53_span, fetch_start.as_nanos());
            proxy_timeline.annotate_flight(do53_span, fetch_start.as_nanos());
            flight::end_span(do53_span, sim.now().as_nanos());
        }

        Do53Observation {
            tun: TunTimeline {
                dns: header_dns,
                connect: tcp_connect,
            },
            proxy: proxy_timeline,
            resolved_at_super_proxy: hijacked,
            truth_t_do53,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohperf_netsim::topology::{GeoPoint, NodeRole, NodeSpec};
    use dohperf_world::countries::country;
    use dohperf_world::geoloc::GeolocationService;

    struct Fixture {
        sim: Simulator,
        network: BrightDataNetwork,
        client: NodeId,
        auth: NodeId,
        web: NodeId,
        deployment: PopDeployment,
    }

    fn fixture() -> Fixture {
        let mut sim = Simulator::new(77);
        let network = BrightDataNetwork::deploy(&mut sim);
        let us = country("US").unwrap();
        let client = sim.add_node(
            NodeSpec::new(
                "measure-client",
                GeoPoint::new(40.1, -88.2),
                NodeRole::Server,
            )
            .with_infra(us.datacenter_profile()),
        );
        let auth = sim.add_node(
            NodeSpec::new(
                "auth-ns",
                GeoPoint::new(39.0, -77.5),
                NodeRole::AuthoritativeNs,
            )
            .with_infra(us.datacenter_profile()),
        );
        let web = sim.add_node(
            NodeSpec::new("web", GeoPoint::new(39.0, -77.5), NodeRole::Server)
                .with_infra(us.datacenter_profile()),
        );
        let deployment = PopDeployment::deploy(ProviderKind::Cloudflare, &mut sim);
        Fixture {
            sim,
            network,
            client,
            auth,
            web,
            deployment,
        }
    }

    fn exit_in(fx: &mut Fixture, iso: &str, id: u64) -> ExitNode {
        let c = country(iso).unwrap();
        let mut geoloc = GeolocationService::new(SimRng::new(id), 0.0, vec!["BR", "US"]);
        let mut rng = SimRng::new(id);
        ExitNode::create(&mut fx.sim, &mut geoloc, c, 0, c.centroid(), id, &mut rng)
    }

    #[test]
    fn doh_observation_is_ordered_and_plausible() {
        let mut fx = fixture();
        let exit = exit_in(&mut fx, "BR", 1);
        let pos = exit.position;
        let pop_index = fx.deployment.nearest_index(&pos);
        let mut rng = SimRng::new(5);
        let obs = fx.network.doh_measurement(
            &mut fx.sim,
            fx.client,
            &exit,
            ProviderKind::Cloudflare,
            &fx.deployment,
            pop_index,
            fx.auth,
            &mut rng,
        );
        assert!(obs.t_a < obs.t_b);
        assert!(obs.t_b <= obs.t_c);
        assert!(obs.t_c < obs.t_d);
        // Brazil exit through a nearby PoP: t_DoH should be a few hundred
        // ms at most; the truth components must be positive.
        let truth = obs.truth_t_doh.as_millis_f64();
        assert!(truth > 30.0 && truth < 2_000.0, "truth {truth}");
        assert!(obs.truth_t_dohr < obs.truth_t_doh);
        assert!(obs.tun.dns > SimDuration::ZERO);
        assert!(obs.tun.connect > SimDuration::ZERO);
    }

    #[test]
    fn do53_header_matches_truth_outside_sp_countries() {
        let mut fx = fixture();
        let exit = exit_in(&mut fx, "BR", 2);
        let mut rng = SimRng::new(6);
        let obs = fx.network.do53_measurement(
            &mut fx.sim,
            fx.client,
            &exit,
            fx.web,
            fx.auth,
            "uuid9.a.com",
            &mut rng,
        );
        assert!(!obs.resolved_at_super_proxy);
        assert_eq!(obs.tun.dns, obs.truth_t_do53);
    }

    #[test]
    fn do53_header_is_wrong_in_sp_countries() {
        let mut fx = fixture();
        let exit = exit_in(&mut fx, "IN", 3);
        let mut rng = SimRng::new(7);
        let obs = fx.network.do53_measurement(
            &mut fx.sim,
            fx.client,
            &exit,
            fx.web,
            fx.auth,
            "uuid10.a.com",
            &mut rng,
        );
        assert!(obs.resolved_at_super_proxy);
        // The header reports the Super Proxy's (US-side) resolution — far
        // faster than a genuine India -> US recursion.
        assert!(
            obs.tun.dns.as_millis_f64() < obs.truth_t_do53.as_millis_f64(),
            "header {} truth {}",
            obs.tun.dns,
            obs.truth_t_do53
        );
    }

    #[test]
    fn reused_queries_are_faster_than_first() {
        let mut fx = fixture();
        let exit = exit_in(&mut fx, "ID", 4);
        let pop_index = fx.deployment.nearest_index(&exit.position);
        let mut rng = SimRng::new(8);
        let mut faster = 0;
        for _ in 0..20 {
            let obs = fx.network.doh_measurement(
                &mut fx.sim,
                fx.client,
                &exit,
                ProviderKind::Cloudflare,
                &fx.deployment,
                pop_index,
                fx.auth,
                &mut rng,
            );
            if obs.truth_t_dohr < obs.truth_t_doh {
                faster += 1;
            }
        }
        // Handshake-free queries win overwhelmingly; allow rare unlucky
        // per-query draws to cross.
        assert!(faster >= 17, "DoHR faster only {faster}/20 times");
    }

    #[test]
    fn simulated_clock_advances_through_measurements() {
        let mut fx = fixture();
        let exit = exit_in(&mut fx, "BR", 5);
        let t0 = fx.sim.now();
        let pop_index = fx.deployment.nearest_index(&exit.position);
        let mut rng = SimRng::new(9);
        fx.network.doh_measurement(
            &mut fx.sim,
            fx.client,
            &exit,
            ProviderKind::Cloudflare,
            &fx.deployment,
            pop_index,
            fx.auth,
            &mut rng,
        );
        assert!(fx.sim.now() > t0);
    }
}
