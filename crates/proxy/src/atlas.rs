//! A RIPE Atlas-style probe network.
//!
//! RIPE Atlas probes are volunteer-hosted residential devices that run
//! simple measurements directly — no proxy in the path — so their Do53
//! timings are trustworthy everywhere, including the 11 Super Proxy
//! countries where BrightData's headers are not (§3.5). The paper uses
//! Atlas for exactly that remedy and cross-validates the two platforms in
//! §4.4.

use crate::exitnode::ExitNode;
use dohperf_netsim::engine::Simulator;
use dohperf_netsim::rng::SimRng;
use dohperf_netsim::time::SimDuration;
use dohperf_netsim::topology::{GeoPoint, NodeId, NodeRole, NodeSpec};
use dohperf_providers::ispresolver::IspResolverModel;
use dohperf_world::countries::Country;

/// One Atlas probe: a residential device plus its default resolver.
#[derive(Debug, Clone)]
pub struct AtlasProbe {
    /// The probe device.
    pub node: NodeId,
    /// Country hosting the probe.
    pub country_iso: &'static str,
    /// The probe's default recursive resolver.
    pub resolver: NodeId,
    /// Resolver behaviour.
    pub resolver_model: IspResolverModel,
}

/// The probe network: pools of probes per country, created on demand.
#[derive(Debug, Default)]
pub struct AtlasNetwork {
    probes: Vec<AtlasProbe>,
}

impl AtlasNetwork {
    /// An empty network.
    pub fn new() -> Self {
        AtlasNetwork::default()
    }

    /// Deploy `count` probes in `country`, scattered around its centroid.
    pub fn deploy_probes(
        &mut self,
        sim: &mut Simulator,
        country: &'static Country,
        count: usize,
        rng: &mut SimRng,
    ) -> Vec<usize> {
        dohperf_telemetry::counter!("proxy.atlas_probes_deployed").add(count as u64);
        let mut indices = Vec::with_capacity(count);
        for i in 0..count {
            let mut pr = rng.fork_indexed(&format!("atlas-{}", country.iso), i as u64);
            let position = GeoPoint::new(
                country.lat + pr.normal(0.0, 2.0),
                country.lon + pr.normal(0.0, 2.0),
            );
            let node = sim.add_node(
                NodeSpec::new(
                    format!("atlas-{}-{i}", country.iso),
                    position,
                    NodeRole::Client,
                )
                .with_infra(country.residential_profile())
                .with_country(country.iso_bytes()),
            );
            let resolver_model = IspResolverModel::for_client(country, &mut pr);
            let resolver = resolver_model.place(sim, country, position, &mut pr);
            indices.push(self.probes.len());
            self.probes.push(AtlasProbe {
                node,
                country_iso: country.iso,
                resolver,
                resolver_model,
            });
        }
        indices
    }

    /// All probes.
    pub fn probes(&self) -> &[AtlasProbe] {
        &self.probes
    }

    /// Probes in a country.
    pub fn probes_in<'a>(&'a self, iso: &'a str) -> impl Iterator<Item = &'a AtlasProbe> {
        self.probes
            .iter()
            .filter(move |p| p.country_iso.eq_ignore_ascii_case(iso))
    }

    /// Run a direct Do53 cache-miss measurement at a probe: stub hop to
    /// its resolver, recursion to the authoritative server, processing.
    /// This is the same physical path an exit node's genuine Do53 takes,
    /// which is why the two platforms agree in §4.4.
    pub fn measure_do53(
        &self,
        sim: &mut Simulator,
        probe_index: usize,
        auth: NodeId,
        rng: &mut SimRng,
    ) -> SimDuration {
        dohperf_telemetry::counter!("proxy.atlas_remedy_queries").inc();
        let probe = &self.probes[probe_index];
        let stub = sim.rtt(probe.node, probe.resolver);
        let recursion = sim.rtt(probe.resolver, auth);
        let processing = probe.resolver_model.processing_time(rng);
        let total = stub + recursion + processing;
        sim.advance(total);
        total
    }
}

/// Check that an Atlas probe's Do53 path matches an exit node's: used by
/// validation to argue the §3.5 remedy is sound.
pub fn same_measurement_shape(probe: &AtlasProbe, exit: &ExitNode) -> bool {
    probe.country_iso == exit.country_iso
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohperf_world::countries::country;

    fn auth_node(sim: &mut Simulator) -> NodeId {
        sim.add_node(NodeSpec::new(
            "auth",
            GeoPoint::new(39.0, -77.5),
            NodeRole::AuthoritativeNs,
        ))
    }

    #[test]
    fn probes_deploy_in_country() {
        let mut sim = Simulator::new(31);
        let mut atlas = AtlasNetwork::new();
        let us = country("US").unwrap();
        let mut rng = SimRng::new(1);
        let idx = atlas.deploy_probes(&mut sim, us, 25, &mut rng);
        assert_eq!(idx.len(), 25);
        assert_eq!(atlas.probes_in("US").count(), 25);
        assert_eq!(atlas.probes_in("BR").count(), 0);
    }

    #[test]
    fn do53_measurement_is_plausible() {
        let mut sim = Simulator::new(32);
        let auth = auth_node(&mut sim);
        let mut atlas = AtlasNetwork::new();
        let de = country("DE").unwrap();
        let mut rng = SimRng::new(2);
        let idx = atlas.deploy_probes(&mut sim, de, 5, &mut rng);
        for &i in &idx {
            let d = atlas.measure_do53(&mut sim, i, auth, &mut rng);
            // Germany -> US recursion: tens to a couple hundred ms.
            let ms = d.as_millis_f64();
            assert!((40.0..600.0).contains(&ms), "{ms}");
        }
    }

    #[test]
    fn measurements_advance_clock() {
        let mut sim = Simulator::new(33);
        let auth = auth_node(&mut sim);
        let mut atlas = AtlasNetwork::new();
        let se = country("SE").unwrap();
        let mut rng = SimRng::new(3);
        let idx = atlas.deploy_probes(&mut sim, se, 1, &mut rng);
        let t0 = sim.now();
        atlas.measure_do53(&mut sim, idx[0], auth, &mut rng);
        assert!(sim.now() > t0);
    }

    #[test]
    fn deployment_is_deterministic() {
        let build = || {
            let mut sim = Simulator::new(34);
            let mut atlas = AtlasNetwork::new();
            let fr = country("FR").unwrap();
            let mut rng = SimRng::new(4);
            atlas.deploy_probes(&mut sim, fr, 3, &mut rng);
            atlas
                .probes()
                .iter()
                .map(|p| {
                    let _ = p;
                })
                .count()
        };
        assert_eq!(build(), build());
    }
}
