//! BrightData Super Proxies.
//!
//! The Super Proxy is the only thing a BrightData customer talks to: it
//! authenticates the client, selects an exit node in the requested
//! country, splices a CONNECT tunnel, and reports timing headers. The real
//! service operates Super Proxy servers in 11 countries (§3.5); clients
//! are served by a nearby one.

use dohperf_http::luminati::ProxyTimeline;
use dohperf_netsim::engine::Simulator;
use dohperf_netsim::rng::SimRng;
use dohperf_netsim::time::SimDuration;
use dohperf_netsim::topology::{GeoPoint, NodeId, NodeRole, NodeSpec};
use dohperf_world::countries::{country, SUPER_PROXY_COUNTRIES};

/// One Super Proxy instance.
#[derive(Debug, Clone, Copy)]
pub struct SuperProxy {
    /// Simulator node.
    pub node: NodeId,
    /// Country hosting this Super Proxy.
    pub country_iso: &'static str,
    /// Location.
    pub position: GeoPoint,
}

impl SuperProxy {
    /// Deploy one Super Proxy in each of the 11 documented countries.
    pub fn deploy_fleet(sim: &mut Simulator) -> Vec<SuperProxy> {
        SUPER_PROXY_COUNTRIES
            .iter()
            .map(|iso| {
                let c = country(iso).expect("super proxy country in table");
                let position = c.centroid();
                let node = sim.add_node(
                    NodeSpec::new(format!("superproxy-{iso}"), position, NodeRole::SuperProxy)
                        .with_infra(c.datacenter_profile())
                        .with_country(c.iso_bytes()),
                );
                SuperProxy {
                    node,
                    country_iso: c.iso,
                    position,
                }
            })
            .collect()
    }

    /// Sample the BrightData-box processing timeline for establishing one
    /// tunnel (client auth, proxy init, exit selection, domain check).
    /// Totals run 5–25ms, dominated by exit-node selection.
    pub fn processing_timeline(rng: &mut SimRng) -> ProxyTimeline {
        ProxyTimeline {
            auth: SimDuration::from_millis_f64(rng.lognormal_median(1.2, 0.3)),
            init: SimDuration::from_millis_f64(rng.lognormal_median(0.8, 0.3)),
            select_node: SimDuration::from_millis_f64(rng.lognormal_median(6.0, 0.5)),
            domain_check: SimDuration::from_millis_f64(rng.lognormal_median(0.5, 0.3)),
        }
    }

    /// Whether Do53 resolution is hijacked to the Super Proxy for exits in
    /// `country_iso` (the §3.5 limitation).
    pub fn resolves_dns_for(country_iso: &str) -> bool {
        SUPER_PROXY_COUNTRIES
            .iter()
            .any(|c| c.eq_ignore_ascii_case(country_iso))
    }
}

/// Pick the fleet member nearest to a client position.
pub fn nearest_super_proxy<'a>(fleet: &'a [SuperProxy], pos: &GeoPoint) -> &'a SuperProxy {
    fleet
        .iter()
        .min_by(|a, b| {
            pos.distance_km(&a.position)
                .partial_cmp(&pos.distance_km(&b.position))
                .expect("finite distances")
        })
        .expect("fleet is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_covers_the_11_countries() {
        let mut sim = Simulator::new(1);
        let fleet = SuperProxy::deploy_fleet(&mut sim);
        assert_eq!(fleet.len(), 11);
        let isos: Vec<&str> = fleet.iter().map(|s| s.country_iso).collect();
        for iso in SUPER_PROXY_COUNTRIES {
            assert!(isos.contains(&iso), "{iso}");
        }
        assert_eq!(sim.topology().by_role(NodeRole::SuperProxy).count(), 11);
    }

    #[test]
    fn dns_hijack_only_in_sp_countries() {
        assert!(SuperProxy::resolves_dns_for("US"));
        assert!(SuperProxy::resolves_dns_for("us"));
        assert!(SuperProxy::resolves_dns_for("SG"));
        assert!(!SuperProxy::resolves_dns_for("BR"));
        assert!(!SuperProxy::resolves_dns_for("TD"));
    }

    #[test]
    fn nearest_selection() {
        let mut sim = Simulator::new(2);
        let fleet = SuperProxy::deploy_fleet(&mut sim);
        // A client in Brazil should be served from the US, not Japan.
        let sp = nearest_super_proxy(&fleet, &GeoPoint::new(-23.5, -46.6));
        assert_eq!(sp.country_iso, "US");
        // A client in Vietnam should get an Asian Super Proxy.
        let sp = nearest_super_proxy(&fleet, &GeoPoint::new(21.0, 105.8));
        assert!(matches!(sp.country_iso, "SG" | "JP" | "KR" | "IN"));
    }

    #[test]
    fn processing_timeline_plausible() {
        let mut rng = SimRng::new(3);
        for _ in 0..200 {
            let t = SuperProxy::processing_timeline(&mut rng);
            let total = t.total().as_millis_f64();
            assert!(total > 2.0 && total < 80.0, "total {total}");
        }
    }
}
