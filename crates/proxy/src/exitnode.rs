//! Residential exit nodes.
//!
//! An exit node is a HolaVPN user's machine: a residential host with the
//! country's infrastructure profile, an OS-configured default resolver
//! (§4.3 confirms exit nodes use the OS resolver), and a /24 prefix that
//! geolocation services see.

use dohperf_netsim::engine::Simulator;
use dohperf_netsim::rng::SimRng;
use dohperf_netsim::time::SimDuration;
use dohperf_netsim::topology::{GeoPoint, NodeId, NodeRole, NodeSpec};
use dohperf_providers::ispresolver::IspResolverModel;
use dohperf_world::countries::Country;
use dohperf_world::geoloc::{GeolocationService, Prefix24};

/// What kind of machine the exit node is.
///
/// The distinction matters for the §4 validation: the paper's
/// ground-truth exits were EC2 VMs — fast CPUs, clean data-centre paths —
/// where Equation 8's `(t11+t12) ≈ (t5+t6)` assumption holds tightly.
/// Real residential exits add CPE/device costs to encrypted flows that
/// the assumption absorbs as (bounded) error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceClass {
    /// A HolaVPN user's home machine behind consumer CPE.
    Residential,
    /// A cloud VM enrolled as an exit node (ground-truth validation).
    Datacenter,
}

/// One exit node and its environment.
#[derive(Debug, Clone)]
pub struct ExitNode {
    /// Unique client id (the Super Proxy's session-unique identifier).
    pub id: u64,
    /// The residential host.
    pub node: NodeId,
    /// The country record (covariates drive the overhead models).
    pub country: &'static Country,
    /// Ground-truth country (what BrightData's targeting delivers).
    pub country_iso: &'static str,
    /// Index into the campaign's country list.
    pub country_index: usize,
    /// This machine's OS-configured recursive resolver.
    pub resolver: NodeId,
    /// Resolver behaviour parameters.
    pub resolver_model: IspResolverModel,
    /// The /24 prefix observed at the web server.
    pub prefix: Prefix24,
    /// Geographic position.
    pub position: GeoPoint,
    /// Residential machine or cloud VM.
    pub device_class: DeviceClass,
}

impl ExitNode {
    /// Create an exit node for a client site: host node, ISP resolver and
    /// geolocatable prefix.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        sim: &mut Simulator,
        geoloc: &mut GeolocationService,
        country: &'static Country,
        country_index: usize,
        position: GeoPoint,
        id: u64,
        rng: &mut SimRng,
    ) -> ExitNode {
        let node = sim.add_node(
            NodeSpec::new(
                format!("exit-{}-{id}", country.iso),
                position,
                NodeRole::Client,
            )
            .with_infra(country.residential_profile())
            .with_country(country.iso_bytes()),
        );
        let mut placement_rng = rng.fork_indexed("resolver", id);
        let resolver_model = IspResolverModel::for_client(country, &mut placement_rng);
        let resolver = resolver_model.place(sim, country, position, &mut placement_rng);
        let prefix = geoloc.allocate(country.iso);
        ExitNode {
            id,
            node,
            country,
            country_iso: country.iso,
            country_index,
            resolver,
            resolver_model,
            prefix,
            position,
            device_class: DeviceClass::Residential,
        }
    }

    /// Create a *controlled* exit node on a cloud VM (the paper's §4
    /// ground-truth setup: EC2 machines running HolaVPN). Data-centre
    /// network profile, healthy local resolver, negligible device costs.
    #[allow(clippy::too_many_arguments)]
    pub fn create_datacenter(
        sim: &mut Simulator,
        geoloc: &mut GeolocationService,
        country: &'static Country,
        country_index: usize,
        position: GeoPoint,
        id: u64,
        rng: &mut SimRng,
    ) -> ExitNode {
        let node = sim.add_node(
            NodeSpec::new(
                format!("exit-dc-{}-{id}", country.iso),
                position,
                NodeRole::Client,
            )
            .with_infra(country.datacenter_profile())
            .with_country(country.iso_bytes()),
        );
        let mut placement_rng = rng.fork_indexed("resolver", id);
        // EC2 VMs use the cloud provider's resolver: local and healthy.
        let resolver_model = IspResolverModel {
            tromboned: false,
            overloaded: false,
            processing_median_ms: 4.0,
        };
        let resolver = resolver_model.place(sim, country, position, &mut placement_rng);
        let prefix = geoloc.allocate(country.iso);
        ExitNode {
            id,
            node,
            country,
            country_iso: country.iso,
            country_index,
            resolver,
            resolver_model,
            prefix,
            position,
            device_class: DeviceClass::Datacenter,
        }
    }

    /// The exit node's Do53 resolution time for a *cache-miss* name whose
    /// authoritative server is `auth`: stub query to the OS resolver, the
    /// resolver's recursion to the authoritative, and resolver processing.
    ///
    /// Logs `dns/udp` trace records so the §4.3 experiment can confirm
    /// the OS resolver is used.
    pub fn do53_cache_miss(
        &self,
        sim: &mut Simulator,
        auth: NodeId,
        qname: &str,
        rng: &mut SimRng,
    ) -> SimDuration {
        sim.trace_packet(self.node, self.resolver, "dns/udp", qname);
        let stub_leg = sim.rtt(self.node, self.resolver);
        sim.trace_packet(self.resolver, auth, "dns/udp", qname);
        let recursion = sim.rtt(self.resolver, auth);
        let processing = self.resolver_model.processing_time(rng);
        stub_leg + recursion + processing
    }

    /// Bootstrap resolution of a popular hostname (a DoH provider
    /// endpoint): usually a resolver cache hit, occasionally a recursion
    /// to the provider's nearby authoritative/anycast node.
    pub fn do53_bootstrap(
        &self,
        sim: &mut Simulator,
        provider_auth: NodeId,
        hostname: &str,
        cache_hit_probability: f64,
        rng: &mut SimRng,
    ) -> SimDuration {
        sim.trace_packet(self.node, self.resolver, "dns/udp", hostname);
        let stub_leg = sim.rtt(self.node, self.resolver);
        let small_processing = SimDuration::from_millis_f64(rng.lognormal_median(1.0, 0.3));
        if rng.chance(cache_hit_probability) {
            stub_leg + small_processing
        } else {
            sim.trace_packet(self.resolver, provider_auth, "dns/udp", hostname);
            let recursion = sim.rtt(self.resolver, provider_auth);
            let processing = self.resolver_model.processing_time(rng);
            stub_leg + recursion + processing
        }
    }

    /// TCP connect time from the exit node to a target (t5+t6).
    pub fn tcp_connect(&self, sim: &mut Simulator, target: NodeId) -> SimDuration {
        sim.trace_packet(self.node, target, "tcp/handshake", "SYN");
        sim.rtt(self.node, target)
    }

    /// Per-exchange HTTPS overhead for DoH traffic from this client.
    ///
    /// Two mechanisms, both keyed to the national covariates (this is the
    /// causal structure the paper's §6 regressions recover):
    ///
    /// * **Access overhead** (bandwidth): TLS records and HTTP framing
    ///   are an order of magnitude larger than a bare UDP DNS datagram;
    ///   on slow, bufferbloated access links each encrypted exchange pays
    ///   serialization and queueing that plain Do53 barely notices.
    /// * **Gateway overhead** (AS count): in poorly peered markets every
    ///   DoH exchange crosses the congested international gateway to a
    ///   foreign PoP, while the ISP resolver answers from co-located
    ///   infrastructure with provisioned upstream transit.
    pub fn https_overhead(&self, rng: &mut SimRng) -> SimDuration {
        if self.device_class == DeviceClass::Datacenter {
            return SimDuration::from_millis_f64(rng.lognormal_median(0.8, 0.3));
        }
        let bw = self.country.bandwidth_mbps.max(1.0);
        let ases = f64::from(self.country.as_count.max(1));
        let access = rng.lognormal_median((2.0 + 240.0 / bw).min(55.0), 0.8);
        let gateway = rng.lognormal_median((22.0 - 2.9 * ases.ln()).clamp(1.0, 22.0), 0.8);
        SimDuration::from_millis_f64(access + gateway)
    }

    /// One-time TLS handshake crypto cost on the client device.
    ///
    /// Certificate validation and key agreement are CPU-bound; cheap or
    /// old devices — which correlate with national income — pay tens of
    /// milliseconds where a modern laptop pays one or two. The cost is
    /// incurred once per connection, which is exactly why the paper's
    /// income odds ratios damp so strongly with connection reuse
    /// (1.98x at DoH-1 down to 1.37x at DoH-10 for low-income clients).
    pub fn handshake_crypto_overhead(&self, rng: &mut SimRng) -> SimDuration {
        if self.device_class == DeviceClass::Datacenter {
            return SimDuration::from_millis_f64(rng.lognormal_median(1.0, 0.3));
        }
        let gdp = self.country.gdp_per_capita.max(200.0);
        SimDuration::from_millis_f64(rng.lognormal_median(2200.0 / gdp.sqrt(), 0.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohperf_world::countries::country;

    fn setup() -> (Simulator, GeolocationService, ExitNode, NodeId) {
        let mut sim = Simulator::new(10);
        let mut geoloc = GeolocationService::new(SimRng::new(11), 0.0, vec!["BR", "US"]);
        let br = country("BR").unwrap();
        let mut rng = SimRng::new(12);
        let exit = ExitNode::create(
            &mut sim,
            &mut geoloc,
            br,
            0,
            GeoPoint::new(-23.5, -46.6),
            1,
            &mut rng,
        );
        let auth = sim.add_node(NodeSpec::new(
            "auth-ns",
            GeoPoint::new(39.0, -77.0),
            NodeRole::AuthoritativeNs,
        ));
        (sim, geoloc, exit, auth)
    }

    #[test]
    fn create_wires_up_host_resolver_and_prefix() {
        let (sim, geoloc, exit, _) = setup();
        assert_eq!(sim.topology().node(exit.node).spec.role, NodeRole::Client);
        assert_eq!(
            sim.topology().node(exit.resolver).spec.role,
            NodeRole::IspResolver
        );
        assert_eq!(geoloc.lookup(exit.prefix), Some("BR"));
    }

    #[test]
    fn cache_miss_includes_recursion_to_auth() {
        let (mut sim, _, exit, auth) = setup();
        let mut rng = SimRng::new(13);
        let d = exit.do53_cache_miss(&mut sim, auth, "uuid1.a.com", &mut rng);
        // Brazil -> US authoritative: must include a transatlantic-scale
        // recursion leg.
        assert!(d.as_millis_f64() > 60.0, "{d}");
    }

    #[test]
    fn bootstrap_cache_hit_is_much_faster_than_miss() {
        let (mut sim, _, exit, auth) = setup();
        let mut rng = SimRng::new(14);
        let hit = exit.do53_bootstrap(&mut sim, auth, "cloudflare-dns.com", 1.0, &mut rng);
        let miss = exit.do53_bootstrap(&mut sim, auth, "cloudflare-dns.com", 0.0, &mut rng);
        assert!(hit < miss, "hit {hit} miss {miss}");
    }

    #[test]
    fn traces_show_os_resolver_usage() {
        let (mut sim, _, exit, auth) = setup();
        sim.set_tracing(true);
        let mut rng = SimRng::new(15);
        exit.do53_cache_miss(&mut sim, auth, "uuid2.a.com", &mut rng);
        // First DNS packet goes from the exit host to its own resolver —
        // the §4.3 observation.
        let first = sim
            .trace()
            .by_proto("dns/udp")
            .next()
            .expect("trace captured");
        assert_eq!(first.src, exit.node);
        assert_eq!(first.dst, exit.resolver);
    }

    #[test]
    fn tcp_connect_positive() {
        let (mut sim, _, exit, auth) = setup();
        assert!(exit.tcp_connect(&mut sim, auth) > SimDuration::ZERO);
    }
}
