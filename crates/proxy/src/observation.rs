//! Measurement observables.
//!
//! A `DohObservation` is everything the paper's measurement client can see
//! for one DoH measurement: four local timestamps and the Super Proxy's
//! timing headers. A `Do53Observation` carries the header-reported DNS
//! value. Both also carry *hidden ground truth* — the actual durations at
//! the exit node — which the methodology must never read, but which the
//! §4 ground-truth validation (Tables 1 and 2) compares against.

use dohperf_http::luminati::{ProxyTimeline, TunTimeline};
use dohperf_netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One tunnelled DoH measurement's observables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DohObservation {
    /// Client sends CONNECT (point A in Figure 2).
    pub t_a: SimTime,
    /// Client receives "200 OK" tunnel established (point B).
    pub t_b: SimTime,
    /// Client sends ClientHello (point C).
    pub t_c: SimTime,
    /// Client receives the DoH response (point D).
    pub t_d: SimTime,
    /// `X-luminati-tun-timeline`: exit-node DNS + connect times.
    pub tun: TunTimeline,
    /// `X-luminati-timeline`: BrightData box processing.
    pub proxy: ProxyTimeline,
    /// Hidden ground truth: the true DoH resolution time at the exit node
    /// (Equation 1's t_DoH). Only §4 validation may read this.
    pub truth_t_doh: SimDuration,
    /// Hidden ground truth: the true reused-connection query time.
    pub truth_t_dohr: SimDuration,
}

/// One tunnelled Do53 measurement's observables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Do53Observation {
    /// `X-luminati-tun-timeline`: the header's "DNS" value — the Do53
    /// query time the methodology extracts (§3.3).
    pub tun: TunTimeline,
    /// BrightData box processing.
    pub proxy: ProxyTimeline,
    /// Whether resolution happened at the Super Proxy instead of the exit
    /// node (the §3.5 limitation; the header value is then meaningless
    /// for the client's country).
    pub resolved_at_super_proxy: bool,
    /// Hidden ground truth: the exit node's real Do53 time.
    pub truth_t_do53: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_fields_are_plain_data() {
        let obs = Do53Observation {
            tun: TunTimeline::default(),
            proxy: ProxyTimeline::default(),
            resolved_at_super_proxy: false,
            truth_t_do53: SimDuration::from_millis(120),
        };
        assert!(!obs.resolved_at_super_proxy);
        assert_eq!(obs.truth_t_do53.as_millis(), 120);
    }

    #[test]
    fn doh_observation_timestamps_order() {
        let obs = DohObservation {
            t_a: SimTime::from_millis(0),
            t_b: SimTime::from_millis(100),
            t_c: SimTime::from_millis(100),
            t_d: SimTime::from_millis(400),
            tun: TunTimeline::default(),
            proxy: ProxyTimeline::default(),
            truth_t_doh: SimDuration::from_millis(300),
            truth_t_dohr: SimDuration::from_millis(200),
        };
        assert!(obs.t_a <= obs.t_b && obs.t_b <= obs.t_c && obs.t_c <= obs.t_d);
    }
}
