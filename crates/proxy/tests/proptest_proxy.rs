//! Property-based tests on the Figure 2 choreography: observables are
//! well-ordered and ground truth stays physically sensible for arbitrary
//! countries, providers and seeds.

use dohperf_netsim::engine::Simulator;
use dohperf_netsim::rng::SimRng;
use dohperf_netsim::topology::{GeoPoint, NodeId, NodeRole, NodeSpec};
use dohperf_providers::pops::PopDeployment;
use dohperf_providers::provider::{ProviderKind, ALL_PROVIDERS};
use dohperf_proxy::exitnode::ExitNode;
use dohperf_proxy::network::BrightDataNetwork;
use dohperf_world::countries::all_countries;
use dohperf_world::geoloc::GeolocationService;
use proptest::prelude::*;

fn build(
    seed: u64,
    country_idx: usize,
    provider_idx: usize,
) -> (
    Simulator,
    BrightDataNetwork,
    ExitNode,
    PopDeployment,
    ProviderKind,
    NodeId,
    NodeId,
) {
    let mut sim = Simulator::new(seed);
    let network = BrightDataNetwork::deploy(&mut sim);
    let client = sim.add_node(NodeSpec::new(
        "mc",
        GeoPoint::new(40.1, -88.2),
        NodeRole::Server,
    ));
    let auth = sim.add_node(NodeSpec::new(
        "auth",
        GeoPoint::new(39.0, -77.5),
        NodeRole::AuthoritativeNs,
    ));
    let provider = ALL_PROVIDERS[provider_idx % ALL_PROVIDERS.len()];
    let deployment = PopDeployment::deploy(provider, &mut sim);
    let countries = all_countries();
    let c = &countries[country_idx % countries.len()];
    let mut geoloc = GeolocationService::new(SimRng::new(seed), 0.0, vec![c.iso]);
    let mut rng = SimRng::new(seed ^ 0xABCD);
    let exit = ExitNode::create(&mut sim, &mut geoloc, c, 0, c.centroid(), 1, &mut rng);
    (sim, network, exit, deployment, provider, client, auth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Timestamps are ordered, headers positive, ground truth physical.
    #[test]
    fn doh_observables_are_well_formed(
        seed in 0u64..10_000,
        ci in 0usize..240,
        pi in 0usize..4,
    ) {
        let (mut sim, network, exit, deployment, provider, client, auth) = build(seed, ci, pi);
        let pop_index = deployment.nearest_index(&exit.position);
        let mut rng = SimRng::new(seed ^ 0xF00D);
        let obs = network.doh_measurement(
            &mut sim, client, &exit, provider, &deployment, pop_index, auth, &mut rng,
        );
        prop_assert!(obs.t_a < obs.t_b);
        prop_assert!(obs.t_b <= obs.t_c);
        prop_assert!(obs.t_c < obs.t_d);
        prop_assert!(obs.tun.dns.as_millis_f64() > 0.0);
        prop_assert!(obs.tun.connect.as_millis_f64() > 0.0);
        prop_assert!(obs.proxy.total().as_millis_f64() > 0.0);
        // DoHR beats DoH1 in aggregate (handshake-free), but an unlucky
        // per-query draw can cross; require positivity here and check the
        // aggregate ordering below with repeated measurements.
        prop_assert!(obs.truth_t_dohr.as_millis_f64() > 0.0);
        // Physical bounds: below 20 seconds even in the worst market.
        prop_assert!(obs.truth_t_doh.as_millis_f64() < 20_000.0);
        // In expectation DoH1 exceeds DoHR by exactly the handshake
        // components; compare means so per-query noise (large for
        // NextDNS's heavy-tailed forwarding penalty) cannot flake.
        let mut sum_doh = 0.0;
        let mut sum_dohr = 0.0;
        for _ in 0..15 {
            let o = network.doh_measurement(
                &mut sim, client, &exit, provider, &deployment, pop_index, auth, &mut rng,
            );
            sum_doh += o.truth_t_doh.as_millis_f64();
            sum_dohr += o.truth_t_dohr.as_millis_f64();
        }
        prop_assert!(
            sum_dohr < sum_doh,
            "mean DoHR {:.1} should beat mean DoH1 {:.1}",
            sum_dohr / 15.0,
            sum_doh / 15.0
        );
    }

    /// The Equation 7 estimate tracks truth within jitter even at fleet
    /// scale: a crude bound of 150ms absolute (typical errors are ~5ms;
    /// residential device effects push the tail, never past this).
    #[test]
    fn derivation_stays_near_truth(
        seed in 0u64..10_000,
        ci in 0usize..240,
    ) {
        let (mut sim, network, exit, deployment, provider, client, auth) = build(seed, ci, 0);
        let pop_index = deployment.nearest_index(&exit.position);
        let mut rng = SimRng::new(seed ^ 0xBEEF);
        let obs = network.doh_measurement(
            &mut sim, client, &exit, provider, &deployment, pop_index, auth, &mut rng,
        );
        let derived = dohperf_core_shim::derive_t_doh_ms(&obs);
        let truth = obs.truth_t_doh.as_millis_f64();
        prop_assert!((derived - truth).abs() < 150.0, "derived {derived} truth {truth}");
    }

    /// Do53 headers equal ground truth exactly outside Super Proxy
    /// countries, and never do the measurement's country bookkeeping harm.
    #[test]
    fn do53_header_contract(
        seed in 0u64..10_000,
        ci in 0usize..240,
    ) {
        let (mut sim, network, exit, _dep, _p, client, auth) = build(seed, ci, 0);
        let web = sim.add_node(NodeSpec::new(
            "web",
            GeoPoint::new(39.0, -77.5),
            NodeRole::Server,
        ));
        let mut rng = SimRng::new(seed ^ 0xCAFE);
        let obs = network.do53_measurement(
            &mut sim, client, &exit, web, auth, "uuid.a.com", &mut rng,
        );
        if obs.resolved_at_super_proxy {
            prop_assert!(dohperf_world::countries::SUPER_PROXY_COUNTRIES
                .contains(&exit.country_iso));
        } else {
            prop_assert_eq!(obs.tun.dns, obs.truth_t_do53);
        }
        prop_assert!(obs.truth_t_do53.as_millis_f64() > 0.0);
    }
}

/// Equations live in dohperf-core, which depends on this crate; re-derive
/// Equation 7 locally to avoid a circular dev-dependency.
mod dohperf_core_shim {
    use dohperf_proxy::observation::DohObservation;
    pub fn derive_t_doh_ms(obs: &DohObservation) -> f64 {
        let td_tc = obs.t_d.saturating_since(obs.t_c).as_millis_f64();
        let tb_ta = obs.t_b.saturating_since(obs.t_a).as_millis_f64();
        td_tc - 2.0 * tb_ta
            + 3.0 * obs.tun.total().as_millis_f64()
            + 2.0 * obs.proxy.total().as_millis_f64()
    }
}
