//! # dohperf-livenet
//!
//! Real networking over `std::net`, proving the protocol crates against
//! actual sockets rather than the simulator:
//!
//! * [`zone`] — a tiny authoritative zone shared by both servers.
//! * [`do53`] — a threaded Do53 server over UDP and a stub client with
//!   retry/timeout semantics (the loopback analogue of the paper's
//!   BIND9 + default-resolver setup).
//! * [`doh`] — a DoH server speaking RFC 8484 GET/POST over HTTP/1.1 on
//!   TCP, plus a client. TLS is intentionally omitted: the point is to
//!   drive the DNS and HTTP codecs end-to-end over real I/O; handshake
//!   *cost* modelling lives in the simulator.
//!
//! Everything binds to `127.0.0.1:0` (ephemeral ports) so tests and
//! examples run anywhere without configuration.

pub mod authority;
pub mod connectproxy;
pub mod do53;
pub mod doh;
pub mod recursive;
pub mod tcp53;
pub mod zone;

pub use authority::AuthorityServer;
pub use connectproxy::{open_tunnel, ConnectProxy};
pub use do53::{Do53Client, Do53Server};
pub use doh::{DohClient, DohServer};
pub use recursive::RecursiveResolver;
pub use tcp53::{query_tcp, FallbackClient, Tcp53Server};
pub use zone::Zone;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::authority::AuthorityServer;
    pub use crate::connectproxy::{open_tunnel, ConnectProxy};
    pub use crate::do53::{Do53Client, Do53Server};
    pub use crate::doh::{DohClient, DohServer};
    pub use crate::recursive::RecursiveResolver;
    pub use crate::tcp53::{query_tcp, FallbackClient, Tcp53Server};
    pub use crate::zone::Zone;
}
