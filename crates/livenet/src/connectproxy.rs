//! A real HTTP CONNECT proxy on loopback — the live analogue of the
//! BrightData Super Proxy.
//!
//! Clients send `CONNECT host:port HTTP/1.1`; the proxy dials the target,
//! replies `200 OK` carrying synthesized `X-Luminati-*` timing headers
//! (the DNS and TCP-connect stages it really performed), then splices
//! bytes in both directions. Combined with [`crate::doh::DohServer`],
//! this reproduces the paper's measurement path — client → proxy →
//! resolver — over actual sockets.

use dohperf_http::codec::{Request, Response, StatusCode};
use dohperf_http::connect::ConnectRequest;
use dohperf_http::luminati::{ProxyTimeline, TunTimeline, TIMELINE_HEADER, TUN_TIMELINE_HEADER};
use dohperf_netsim::time::SimDuration;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A threaded CONNECT proxy.
pub struct ConnectProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    tunnels: Arc<AtomicU64>,
}

impl ConnectProxy {
    /// Start the proxy on an ephemeral loopback port.
    pub fn start() -> io::Result<ConnectProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let tunnels = Arc::new(AtomicU64::new(0));
        let flag = shutdown.clone();
        let counter = tunnels.clone();
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let counter = counter.clone();
                        std::thread::spawn(move || {
                            let _ = serve_tunnel(stream, &counter);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(ConnectProxy {
            addr,
            shutdown,
            handle: Some(handle),
            tunnels,
        })
    }

    /// The proxy's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Tunnels successfully established so far.
    pub fn tunnels_established(&self) -> u64 {
        self.tunnels.load(Ordering::Relaxed)
    }

    /// Stop accepting (existing tunnels drain on their own threads).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ConnectProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_tunnel(mut client: TcpStream, established: &AtomicU64) -> io::Result<()> {
    client.set_read_timeout(Some(Duration::from_millis(2000)))?;
    // Read the CONNECT request head.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 2048];
    let request = loop {
        match Request::decode(&buf) {
            Ok((req, _)) => break req,
            Err(_) => {
                let n = client.read(&mut chunk)?;
                if n == 0 {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "no request"));
                }
                buf.extend_from_slice(&chunk[..n]);
            }
        }
    };
    let Ok(connect) = ConnectRequest::from_request(&request) else {
        client.write_all(&Response::new(StatusCode::BAD_REQUEST).encode())?;
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "not CONNECT"));
    };

    // "DNS" stage: resolve the target (loopback literals resolve
    // instantly, but we time it like the real proxy does).
    let dns_start = Instant::now();
    let target = format!("{}:{}", connect.host, connect.port);
    let resolved: Vec<SocketAddr> = target
        .to_socket_addrs()
        .map_err(|e| io::Error::new(io::ErrorKind::AddrNotAvailable, e))?
        .collect();
    let dns_time = dns_start.elapsed();
    let Some(&upstream_addr) = resolved.first() else {
        client.write_all(&Response::new(StatusCode::BAD_GATEWAY).encode())?;
        return Err(io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            "no address",
        ));
    };

    // "Connect" stage.
    let connect_start = Instant::now();
    let upstream = match TcpStream::connect_timeout(&upstream_addr, Duration::from_millis(1000)) {
        Ok(s) => s,
        Err(e) => {
            client.write_all(&Response::new(StatusCode::BAD_GATEWAY).encode())?;
            return Err(e);
        }
    };
    let connect_time = connect_start.elapsed();

    // 200 with timing headers, exactly the observables the paper reads.
    let tun = TunTimeline {
        dns: SimDuration::from_millis_f64(dns_time.as_secs_f64() * 1000.0),
        connect: SimDuration::from_millis_f64(connect_time.as_secs_f64() * 1000.0),
    };
    let proxy = ProxyTimeline {
        auth: SimDuration::from_micros(150),
        init: SimDuration::from_micros(80),
        select_node: SimDuration::from_micros(400),
        domain_check: SimDuration::from_micros(60),
    };
    let mut ok = Response::new(StatusCode::OK);
    ok.headers
        .insert(TUN_TIMELINE_HEADER, tun.to_header_value());
    ok.headers.insert(TIMELINE_HEADER, proxy.to_header_value());
    client.write_all(&ok.encode())?;
    // The tunnel is established the moment the 200 goes out.
    established.fetch_add(1, Ordering::Relaxed);

    // Splice both directions until either side closes.
    splice(client, upstream)
}

fn splice(a: TcpStream, b: TcpStream) -> io::Result<()> {
    let a2 = a.try_clone()?;
    let b2 = b.try_clone()?;
    let t1 = std::thread::spawn(move || copy_until_eof(a, b));
    let t2 = std::thread::spawn(move || copy_until_eof(b2, a2));
    let _ = t1.join();
    let _ = t2.join();
    Ok(())
}

fn copy_until_eof(mut from: TcpStream, mut to: TcpStream) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(3000)));
    let mut buf = [0u8; 8192];
    loop {
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

/// Open a tunnel through `proxy` to `target`, returning the connected
/// stream (ready for application data) plus the proxy's timing headers.
pub fn open_tunnel(
    proxy: SocketAddr,
    target: SocketAddr,
) -> io::Result<(TcpStream, TunTimeline, ProxyTimeline)> {
    let mut stream = TcpStream::connect(proxy)?;
    stream.set_read_timeout(Some(Duration::from_millis(2000)))?;
    let connect = ConnectRequest::new(target.ip().to_string(), target.port());
    stream.write_all(&connect.to_request().encode())?;
    // Read the 200 response head.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 2048];
    let response = loop {
        if let Ok((resp, consumed)) = Response::decode(&buf) {
            // Any bytes past the head belong to the tunnel; there are
            // none in practice since we have not sent application data.
            buf.drain(..consumed);
            break resp;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "proxy closed"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    if response.status != StatusCode::OK {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("proxy answered HTTP {}", response.status.0),
        ));
    }
    let tun = response
        .headers
        .get(TUN_TIMELINE_HEADER)
        .and_then(|v| TunTimeline::parse(v).ok())
        .unwrap_or_default();
    let proxy_tl = response
        .headers
        .get(TIMELINE_HEADER)
        .and_then(|v| ProxyTimeline::parse(v).ok())
        .unwrap_or_default();
    Ok((stream, tun, proxy_tl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doh::DohServer;
    use crate::zone::Zone;
    use dohperf_dns::doh::DohRequest;
    use dohperf_dns::message::Message;
    use dohperf_dns::name::DnsName;
    use dohperf_dns::types::RecordType;
    use dohperf_http::codec::Method;
    use std::net::Ipv4Addr;

    fn doh_backend() -> DohServer {
        let zone = Zone::new();
        zone.insert_wildcard("a.com", Ipv4Addr::new(203, 0, 113, 44));
        DohServer::start(zone).unwrap()
    }

    #[test]
    fn tunnel_carries_a_doh_exchange_end_to_end() {
        let backend = doh_backend();
        let proxy = ConnectProxy::start().unwrap();
        let (mut tunnel, tun, proxy_tl) = open_tunnel(proxy.addr(), backend.addr()).unwrap();
        // Timing headers were parsed from the wire.
        assert!(tun.connect.as_millis_f64() >= 0.0);
        assert!(proxy_tl.total().as_nanos() > 0);

        // Speak DoH through the tunnel.
        let query = Message::query(9, DnsName::parse("tun.a.com").unwrap(), RecordType::A);
        let doh = DohRequest::get(&query).unwrap();
        let mut http = dohperf_http::codec::Request::new(Method::Get, doh.path);
        http.headers.set("Connection", "close");
        tunnel.write_all(&http.encode()).unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let resp = loop {
            if let Ok((r, _)) = Response::decode(&buf) {
                break r;
            }
            let n = tunnel.read(&mut chunk).unwrap();
            if n == 0 {
                panic!("tunnel closed before response");
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        assert_eq!(resp.status, StatusCode::OK);
        let answer = Message::decode(&resp.body).unwrap();
        assert_eq!(answer.first_a(), Some(Ipv4Addr::new(203, 0, 113, 44)));
        assert_eq!(proxy.tunnels_established(), 1);
    }

    #[test]
    fn unreachable_target_yields_502() {
        let proxy = ConnectProxy::start().unwrap();
        // Bind-and-drop a port so nothing listens there.
        let dead = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = dead.local_addr().unwrap();
        drop(dead);
        let err = open_tunnel(proxy.addr(), addr);
        assert!(err.is_err());
    }

    #[test]
    fn non_connect_requests_rejected() {
        let proxy = ConnectProxy::start().unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(2000)))
            .unwrap();
        let req = dohperf_http::codec::Request::new(Method::Get, "/x");
        stream.write_all(&req.encode()).unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            if let Ok((resp, _)) = Response::decode(&buf) {
                assert_eq!(resp.status, StatusCode::BAD_REQUEST);
                break;
            }
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0);
            buf.extend_from_slice(&chunk[..n]);
        }
    }

    #[test]
    fn multiple_sequential_tunnels() {
        let backend = doh_backend();
        let proxy = ConnectProxy::start().unwrap();
        for i in 0..5u16 {
            let (mut tunnel, _, _) = open_tunnel(proxy.addr(), backend.addr()).unwrap();
            let query = Message::query(
                i,
                DnsName::parse(&format!("seq{i}.a.com")).unwrap(),
                RecordType::A,
            );
            let doh = DohRequest::post(&query).unwrap();
            let mut http =
                dohperf_http::codec::Request::new(Method::Post, doh.path).with_body(doh.body);
            http.headers.set("Connection", "close");
            tunnel.write_all(&http.encode()).unwrap();
            let mut buf = Vec::new();
            let mut chunk = [0u8; 4096];
            loop {
                if let Ok((resp, _)) = Response::decode(&buf) {
                    let answer = Message::decode(&resp.body).unwrap();
                    assert_eq!(answer.header.id, i);
                    break;
                }
                let n = tunnel.read(&mut chunk).unwrap();
                assert!(n > 0, "tunnel {i} closed early");
                buf.extend_from_slice(&chunk[..n]);
            }
        }
        assert_eq!(proxy.tunnels_established(), 5);
    }
}
