//! Do53 over real UDP sockets on loopback.

use crate::zone::Zone;
use dohperf_dns::message::Message;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A threaded authoritative Do53 server.
///
/// Binds an ephemeral UDP port on 127.0.0.1 and answers from a [`Zone`]
/// until shut down (dropping the server shuts it down).
pub struct Do53Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Do53Server {
    /// Start the server.
    pub fn start(zone: Zone) -> io::Result<Do53Server> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        let addr = socket.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::spawn(move || {
            let mut buf = [0u8; 1500];
            while !flag.load(Ordering::Relaxed) {
                match socket.recv_from(&mut buf) {
                    Ok((len, peer)) => {
                        let Ok(query) = Message::decode(&buf[..len]) else {
                            continue; // malformed datagram: drop silently
                        };
                        let response = zone.answer(&query);
                        if let Ok(bytes) = response.encode() {
                            let _ = socket.send_to(&bytes, peer);
                        }
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Do53Server {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown and join the serving thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Do53Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A stub Do53 client with timeout and retry.
pub struct Do53Client {
    server: SocketAddr,
    /// Per-attempt timeout.
    pub timeout: Duration,
    /// Retransmission attempts after the first.
    pub retries: u32,
}

impl Do53Client {
    /// A client for one server with stub-resolver defaults.
    pub fn new(server: SocketAddr) -> Do53Client {
        Do53Client {
            server,
            timeout: Duration::from_millis(500),
            retries: 2,
        }
    }

    /// Resolve a query, retrying on timeout. Responses whose transaction
    /// id does not match are discarded (off-path spoof protection).
    pub fn resolve(&self, query: &Message) -> io::Result<Message> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(self.timeout))?;
        let wire = query
            .encode()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let mut buf = [0u8; 1500];
        for _attempt in 0..=self.retries {
            socket.send_to(&wire, self.server)?;
            match socket.recv_from(&mut buf) {
                Ok((len, peer)) => {
                    if peer != self.server {
                        continue;
                    }
                    match Message::decode(&buf[..len]) {
                        Ok(resp) if resp.header.id == query.header.id => return Ok(resp),
                        _ => continue,
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "no response after retries",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohperf_dns::name::DnsName;
    use dohperf_dns::types::{RCode, RecordType};
    use std::net::Ipv4Addr;

    fn serving_zone() -> Zone {
        let zone = Zone::new();
        zone.insert_wildcard("a.com", Ipv4Addr::new(198, 51, 100, 7));
        zone
    }

    #[test]
    fn resolve_over_real_udp() {
        let server = Do53Server::start(serving_zone()).unwrap();
        let client = Do53Client::new(server.addr());
        let q = Message::query(
            0x1111,
            DnsName::parse("uuid42.a.com").unwrap(),
            RecordType::A,
        );
        let resp = client.resolve(&q).unwrap();
        assert_eq!(resp.header.rcode, RCode::NoError);
        assert_eq!(resp.first_a(), Some(Ipv4Addr::new(198, 51, 100, 7)));
        assert_eq!(resp.header.id, 0x1111);
        server.shutdown();
    }

    #[test]
    fn nxdomain_round_trips() {
        let server = Do53Server::start(serving_zone()).unwrap();
        let client = Do53Client::new(server.addr());
        let q = Message::query(2, DnsName::parse("other.example").unwrap(), RecordType::A);
        let resp = client.resolve(&q).unwrap();
        assert_eq!(resp.header.rcode, RCode::NxDomain);
    }

    #[test]
    fn concurrent_clients() {
        let server = Do53Server::start(serving_zone()).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..8u16)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = Do53Client::new(addr);
                    let q = Message::query(
                        i,
                        DnsName::parse(&format!("c{i}.a.com")).unwrap(),
                        RecordType::A,
                    );
                    client.resolve(&q).unwrap().header.id
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), i as u16);
        }
    }

    #[test]
    fn timeout_against_dead_server() {
        // Bind-then-drop leaves a port nobody answers on.
        let dead = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let addr = dead.local_addr().unwrap();
        drop(dead);
        let mut client = Do53Client::new(addr);
        client.timeout = Duration::from_millis(30);
        client.retries = 1;
        let q = Message::query(3, DnsName::parse("x.a.com").unwrap(), RecordType::A);
        let err = client.resolve(&q);
        assert!(err.is_err());
    }

    #[test]
    fn malformed_datagrams_do_not_kill_server() {
        let server = Do53Server::start(serving_zone()).unwrap();
        let sock = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        sock.send_to(b"\xff\x00garbage", server.addr()).unwrap();
        // The server must still answer a proper query afterwards.
        let client = Do53Client::new(server.addr());
        let q = Message::query(4, DnsName::parse("ok.a.com").unwrap(), RecordType::A);
        assert!(client.resolve(&q).is_ok());
    }
}
