//! A miniature authoritative zone.

use dohperf_dns::message::Message;
use dohperf_dns::name::DnsName;
use dohperf_dns::rdata::RData;
use dohperf_dns::record::ResourceRecord;
use dohperf_dns::types::{RCode, RecordType};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// A thread-safe name → A-record map with wildcard support for the
/// measurement zone (`*.a.com` answers any UUID subdomain, as the
/// paper's authoritative server does).
#[derive(Debug, Clone, Default)]
pub struct Zone {
    inner: Arc<RwLock<ZoneInner>>,
}

#[derive(Debug, Default)]
struct ZoneInner {
    exact: HashMap<DnsName, Ipv4Addr>,
    wildcards: HashMap<DnsName, Ipv4Addr>,
    queries_served: u64,
}

impl Zone {
    /// An empty zone.
    pub fn new() -> Self {
        Zone::default()
    }

    /// Add an exact A record.
    pub fn insert(&self, name: &str, ip: Ipv4Addr) {
        let name = DnsName::parse(name).expect("valid zone name");
        self.inner.write().exact.insert(name, ip);
    }

    /// Add a wildcard: any subdomain of `suffix` resolves to `ip`.
    pub fn insert_wildcard(&self, suffix: &str, ip: Ipv4Addr) {
        let name = DnsName::parse(suffix).expect("valid zone suffix");
        self.inner.write().wildcards.insert(name, ip);
    }

    /// Look up a name.
    pub fn lookup(&self, name: &DnsName) -> Option<Ipv4Addr> {
        let inner = self.inner.read();
        if let Some(&ip) = inner.exact.get(name) {
            return Some(ip);
        }
        inner
            .wildcards
            .iter()
            .find(|(suffix, _)| name.is_subdomain_of(suffix))
            .map(|(_, &ip)| ip)
    }

    /// Answer a query message: A answers for known names, NXDOMAIN
    /// otherwise, NOTIMP for non-A/AAAA queries.
    pub fn answer(&self, query: &Message) -> Message {
        self.inner.write().queries_served += 1;
        let Some(question) = query.first_question() else {
            return Message::response(query, RCode::FormErr, Vec::new());
        };
        match question.qtype {
            RecordType::A => match self.lookup(&question.qname) {
                Some(ip) => {
                    let rr = ResourceRecord::new(question.qname.clone(), 60, RData::A(ip));
                    let mut resp = Message::response(query, RCode::NoError, vec![rr]);
                    resp.header.flags.aa = true;
                    resp
                }
                None => Message::response(query, RCode::NxDomain, Vec::new()),
            },
            RecordType::Aaaa => Message::response(query, RCode::NoError, Vec::new()),
            _ => Message::response(query, RCode::NotImp, Vec::new()),
        }
    }

    /// Total queries served since creation.
    pub fn queries_served(&self) -> u64 {
        self.inner.read().queries_served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohperf_dns::message::Message;

    #[test]
    fn exact_and_wildcard_lookup() {
        let zone = Zone::new();
        zone.insert("www.a.com", Ipv4Addr::new(192, 0, 2, 1));
        zone.insert_wildcard("a.com", Ipv4Addr::new(192, 0, 2, 9));
        let www = DnsName::parse("www.a.com").unwrap();
        let uuid = DnsName::parse("deadbeef.a.com").unwrap();
        let other = DnsName::parse("example.net").unwrap();
        assert_eq!(zone.lookup(&www), Some(Ipv4Addr::new(192, 0, 2, 1)));
        assert_eq!(zone.lookup(&uuid), Some(Ipv4Addr::new(192, 0, 2, 9)));
        assert_eq!(zone.lookup(&other), None);
    }

    #[test]
    fn answers_are_authoritative() {
        let zone = Zone::new();
        zone.insert_wildcard("a.com", Ipv4Addr::new(203, 0, 113, 5));
        let q = Message::query(7, DnsName::parse("x1.a.com").unwrap(), RecordType::A);
        let resp = zone.answer(&q);
        assert_eq!(resp.header.rcode, RCode::NoError);
        assert!(resp.header.flags.aa);
        assert_eq!(resp.first_a(), Some(Ipv4Addr::new(203, 0, 113, 5)));
        assert_eq!(zone.queries_served(), 1);
    }

    #[test]
    fn unknown_name_is_nxdomain() {
        let zone = Zone::new();
        let q = Message::query(8, DnsName::parse("nope.example").unwrap(), RecordType::A);
        assert_eq!(zone.answer(&q).header.rcode, RCode::NxDomain);
    }

    #[test]
    fn unsupported_type_is_notimp() {
        let zone = Zone::new();
        let q = Message::query(9, DnsName::parse("a.com").unwrap(), RecordType::Mx);
        assert_eq!(zone.answer(&q).header.rcode, RCode::NotImp);
    }

    #[test]
    fn aaaa_gets_empty_noerror() {
        let zone = Zone::new();
        zone.insert_wildcard("a.com", Ipv4Addr::new(1, 2, 3, 4));
        let q = Message::query(10, DnsName::parse("x.a.com").unwrap(), RecordType::Aaaa);
        let resp = zone.answer(&q);
        assert_eq!(resp.header.rcode, RCode::NoError);
        assert!(resp.answers.is_empty());
    }
}
