//! A recursive resolver over real UDP: drives the sans-I/O
//! [`IterativeResolver`] engine against live [`crate::do53::Do53Server`]s.
//!
//! Together with [`crate::authority::AuthorityServer`] this forms a real
//! miniature DNS hierarchy on loopback — root, TLD and leaf zones on
//! separate sockets — the local analogue of the global system the paper's
//! ISP resolvers traverse.

use dohperf_dns::message::Message;
use dohperf_dns::name::DnsName;
use dohperf_dns::resolver::{Answer, IterativeResolver, Step};
use dohperf_dns::types::RecordType;
use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// A live recursive resolver.
///
/// The delegation tree lives on loopback sockets, but the sans-I/O engine
/// speaks in terms of the *zone-data* IPv4 addresses (glue records). The
/// `server_map` translates glue addresses to the actual loopback
/// `SocketAddr`s of the serving processes.
pub struct RecursiveResolver {
    engine: IterativeResolver,
    server_map: HashMap<Ipv4Addr, SocketAddr>,
    /// Per-query I/O timeout.
    pub timeout: Duration,
}

impl RecursiveResolver {
    /// Create a resolver with root-server glue addresses and the map from
    /// glue address to live socket address.
    pub fn new(roots: Vec<Ipv4Addr>, server_map: HashMap<Ipv4Addr, SocketAddr>) -> Self {
        RecursiveResolver {
            engine: IterativeResolver::new(roots),
            server_map,
            timeout: Duration::from_millis(500),
        }
    }

    /// Resolve `name` to addresses by walking the live hierarchy.
    pub fn resolve(&mut self, name: &DnsName) -> io::Result<Answer> {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(self.timeout))?;
        let mut step = self.engine.begin(name, RecordType::A, now);
        let mut txid: u16 = 1;
        for _hop in 0..40 {
            match step {
                Step::Answered(answer) => return Ok(answer),
                Step::Query { server, question } => {
                    let target = self.server_map.get(&server).copied().ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::AddrNotAvailable,
                            format!("no live server for glue address {server}"),
                        )
                    })?;
                    txid = txid.wrapping_add(1);
                    let query = Message::query(txid, question.qname.clone(), question.qtype);
                    socket.send_to(&query.encode().map_err(to_io)?, target)?;
                    let mut buf = [0u8; 1500];
                    let (len, _) = socket.recv_from(&mut buf)?;
                    let response = Message::decode(&buf[..len]).map_err(to_io)?;
                    step = self
                        .engine
                        .advance(&response, now)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                }
            }
        }
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "resolution exceeded hop budget",
        ))
    }

    /// Cache statistics of the underlying engine.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.engine.cache().stats()
    }
}

fn to_io(e: dohperf_dns::error::DnsError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::AuthorityServer;

    const ROOT_GLUE: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
    const TLD_GLUE: Ipv4Addr = Ipv4Addr::new(192, 5, 6, 30);
    const AUTH_GLUE: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 53);
    const WEB: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 80);

    /// Build the live three-tier hierarchy: root delegates com to the TLD
    /// server, which delegates a.com to the leaf authority.
    fn hierarchy() -> (Vec<AuthorityServer>, RecursiveResolver) {
        let root_zone = r#"
$ORIGIN .
$TTL 86400
com. IN NS ns.tld.
ns.tld. IN A 192.5.6.30
"#;
        let tld_zone = r#"
$ORIGIN com.
$TTL 3600
a IN NS ns1.a.com.
ns1.a.com. IN A 203.0.113.53
"#;
        let leaf_zone = r#"
$ORIGIN a.com.
$TTL 300
@ IN NS ns1
ns1 IN A 203.0.113.53
www IN A 203.0.113.80
alias IN CNAME www
"#;
        let root = AuthorityServer::start_from_zonefile(root_zone, ".").unwrap();
        let tld = AuthorityServer::start_from_zonefile(tld_zone, "com").unwrap();
        let leaf = AuthorityServer::start_from_zonefile(leaf_zone, "a.com").unwrap();
        let mut map = HashMap::new();
        map.insert(ROOT_GLUE, root.addr());
        map.insert(TLD_GLUE, tld.addr());
        map.insert(AUTH_GLUE, leaf.addr());
        let resolver = RecursiveResolver::new(vec![ROOT_GLUE], map);
        (vec![root, tld, leaf], resolver)
    }

    #[test]
    fn full_walk_over_real_udp() {
        let (_servers, mut resolver) = hierarchy();
        let answer = resolver
            .resolve(&DnsName::parse("www.a.com").unwrap())
            .unwrap();
        assert_eq!(answer, Answer::Addresses(vec![WEB]));
    }

    #[test]
    fn cname_chased_over_real_udp() {
        let (_servers, mut resolver) = hierarchy();
        let answer = resolver
            .resolve(&DnsName::parse("alias.a.com").unwrap())
            .unwrap();
        assert_eq!(answer, Answer::Addresses(vec![WEB]));
    }

    #[test]
    fn nxdomain_over_real_udp() {
        let (_servers, mut resolver) = hierarchy();
        let answer = resolver
            .resolve(&DnsName::parse("missing.a.com").unwrap())
            .unwrap();
        assert_eq!(answer, Answer::NxDomain);
    }

    #[test]
    fn delegations_are_cached_across_queries() {
        let (_servers, mut resolver) = hierarchy();
        resolver
            .resolve(&DnsName::parse("www.a.com").unwrap())
            .unwrap();
        let (hits_before, _) = resolver.cache_stats();
        resolver
            .resolve(&DnsName::parse("other.a.com").unwrap())
            .ok();
        let (hits_after, _) = resolver.cache_stats();
        assert!(
            hits_after > hits_before,
            "second query should hit the delegation cache"
        );
    }
}
