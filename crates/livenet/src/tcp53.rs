//! DNS over TCP (RFC 1035 §4.2.2) and the TC-bit fallback path.
//!
//! When a UDP answer arrives truncated (TC set), real stub resolvers
//! retry the query over TCP, where messages ride behind a two-octet
//! length prefix. [`Tcp53Server`] serves the same [`Zone`] over TCP;
//! [`FallbackClient`] tries UDP first and falls back automatically.

use crate::do53::Do53Client;
use crate::zone::Zone;
use dohperf_dns::message::{Message, CLASSIC_UDP_LIMIT};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A threaded DNS-over-TCP server.
pub struct Tcp53Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Tcp53Server {
    /// Start serving `zone` over TCP on an ephemeral loopback port.
    pub fn start(zone: Zone) -> io::Result<Tcp53Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let zone = zone.clone();
                        std::thread::spawn(move || {
                            let _ = serve_tcp_connection(stream, zone);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Tcp53Server {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop serving.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Tcp53Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_tcp_connection(mut stream: TcpStream, zone: Zone) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(1000)))?;
    loop {
        let Some(query_bytes) = read_framed(&mut stream)? else {
            return Ok(()); // clean EOF
        };
        let Ok(query) = Message::decode(&query_bytes) else {
            continue;
        };
        let response = zone.answer(&query);
        // TCP has no 512-byte limit; send the full message.
        let Ok(wire) = response.encode() else {
            continue;
        };
        write_framed(&mut stream, &wire)?;
    }
}

/// Read one length-prefixed message; `Ok(None)` on clean EOF.
pub fn read_framed(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 2];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            return Ok(None)
        }
        Err(e) => return Err(e),
    }
    let len = u16::from_be_bytes(len_buf) as usize;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Write one length-prefixed message.
pub fn write_framed(stream: &mut TcpStream, wire: &[u8]) -> io::Result<()> {
    let len = u16::try_from(wire.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "message too long for TCP DNS"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(wire)
}

/// One-shot DNS-over-TCP query.
pub fn query_tcp(server: SocketAddr, query: &Message, timeout: Duration) -> io::Result<Message> {
    let mut stream = TcpStream::connect(server)?;
    stream.set_read_timeout(Some(timeout))?;
    let wire = query
        .encode()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    write_framed(&mut stream, &wire)?;
    let body = read_framed(&mut stream)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no TCP response"))?;
    Message::decode(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// A stub client implementing the classic UDP-then-TCP fallback.
pub struct FallbackClient {
    udp: Do53Client,
    tcp_addr: SocketAddr,
    /// TCP query timeout.
    pub tcp_timeout: Duration,
    /// Statistics: how many queries needed the TCP retry.
    pub tcp_fallbacks: std::cell::Cell<u64>,
}

impl FallbackClient {
    /// Build from a UDP server address and a TCP server address (usually
    /// the same host, different sockets here).
    pub fn new(udp_addr: SocketAddr, tcp_addr: SocketAddr) -> FallbackClient {
        FallbackClient {
            udp: Do53Client::new(udp_addr),
            tcp_addr,
            tcp_timeout: Duration::from_millis(1000),
            tcp_fallbacks: std::cell::Cell::new(0),
        }
    }

    /// Resolve: UDP first; on a TC-flagged response, retry over TCP.
    pub fn resolve(&self, query: &Message) -> io::Result<Message> {
        let udp_response = self.udp.resolve(query)?;
        if !udp_response.header.flags.tc {
            return Ok(udp_response);
        }
        self.tcp_fallbacks.set(self.tcp_fallbacks.get() + 1);
        query_tcp(self.tcp_addr, query, self.tcp_timeout)
    }
}

/// A UDP server wrapper whose zone answers are bounded to 512 bytes (the
/// classic limit), producing TC responses for large answer sets — used to
/// exercise the fallback path. Built on the plain [`crate::do53::Do53Server`] zone
/// answering, but with bounded encoding.
pub struct BoundedUdpServer;

impl BoundedUdpServer {
    /// Start a UDP server that truncates to the classic 512-byte limit.
    pub fn start(zone: Zone) -> io::Result<(Do53ServerBounded, SocketAddr)> {
        Do53ServerBounded::start(zone)
    }
}

/// The bounded-encoding UDP server (internals mirror `Do53Server`).
pub struct Do53ServerBounded {
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Do53ServerBounded {
    fn start(zone: Zone) -> io::Result<(Do53ServerBounded, SocketAddr)> {
        let socket = std::net::UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        let addr = socket.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::spawn(move || {
            let mut buf = [0u8; 1500];
            while !flag.load(Ordering::Relaxed) {
                match socket.recv_from(&mut buf) {
                    Ok((len, peer)) => {
                        let Ok(query) = Message::decode(&buf[..len]) else {
                            continue;
                        };
                        let response = zone.answer(&query);
                        if let Ok(bytes) = response.encode_bounded(CLASSIC_UDP_LIMIT) {
                            let _ = socket.send_to(&bytes, peer);
                        }
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(_) => break,
                }
            }
        });
        Ok((
            Do53ServerBounded {
                shutdown,
                handle: Some(handle),
            },
            addr,
        ))
    }

    /// Stop serving.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Do53ServerBounded {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::do53::Do53Server;
    use dohperf_dns::name::DnsName;
    use dohperf_dns::rdata::RData;
    use dohperf_dns::types::{RCode, RecordType};
    use std::net::Ipv4Addr;

    fn zone() -> Zone {
        let z = Zone::new();
        z.insert_wildcard("a.com", Ipv4Addr::new(203, 0, 113, 8));
        z
    }

    #[test]
    fn tcp_query_roundtrips() {
        let server = Tcp53Server::start(zone()).unwrap();
        let q = Message::query(1, DnsName::parse("t1.a.com").unwrap(), RecordType::A);
        let resp = query_tcp(server.addr(), &q, Duration::from_millis(1000)).unwrap();
        assert_eq!(resp.header.rcode, RCode::NoError);
        assert_eq!(resp.first_a(), Some(Ipv4Addr::new(203, 0, 113, 8)));
        server.shutdown();
    }

    #[test]
    fn multiple_queries_per_tcp_connection() {
        let server = Tcp53Server::start(zone()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(1000)))
            .unwrap();
        for i in 0..5u16 {
            let q = Message::query(
                i,
                DnsName::parse(&format!("m{i}.a.com")).unwrap(),
                RecordType::A,
            );
            write_framed(&mut stream, &q.encode().unwrap()).unwrap();
            let body = read_framed(&mut stream).unwrap().unwrap();
            let resp = Message::decode(&body).unwrap();
            assert_eq!(resp.header.id, i);
        }
    }

    #[test]
    fn fallback_client_stays_on_udp_for_small_answers() {
        let udp = Do53Server::start(zone()).unwrap();
        let tcp = Tcp53Server::start(zone()).unwrap();
        let client = FallbackClient::new(udp.addr(), tcp.addr());
        let q = Message::query(2, DnsName::parse("s.a.com").unwrap(), RecordType::A);
        let resp = client.resolve(&q).unwrap();
        assert!(!resp.header.flags.tc);
        assert_eq!(client.tcp_fallbacks.get(), 0);
        assert_eq!(resp.first_a(), Some(Ipv4Addr::new(203, 0, 113, 8)));
    }

    /// A zone whose answer is deliberately oversized for UDP.
    fn fat_zone() -> Zone {
        // The flat Zone answers single A records; build fatness via the
        // answer hook: a wildcard with many TXT-like names isn't
        // expressible there, so instead wrap: we exercise fatness through
        // encode_bounded directly at the bounded server by answering a
        // name whose *question* is fine but whose answer we inflate.
        // Simplest honest approach: the bounded server truncates whatever
        // the zone answers; craft a zone answer that exceeds 512 bytes by
        // using a very long owner name chain is impossible with single A
        // answers (~60 bytes). So this test drives the fallback with a
        // synthetic TC response instead.
        zone()
    }

    #[test]
    fn fallback_client_retries_over_tcp_on_tc() {
        // Synthetic-TC UDP server: always answers with TC set.
        let socket = std::net::UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        socket
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let udp_addr = socket.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut buf = [0u8; 1500];
            while !flag.load(Ordering::Relaxed) {
                if let Ok((len, peer)) = socket.recv_from(&mut buf) {
                    if let Ok(query) = Message::decode(&buf[..len]) {
                        let mut resp = Message::response(&query, RCode::NoError, Vec::new());
                        resp.header.flags.tc = true;
                        let _ = socket.send_to(&resp.encode().unwrap(), peer);
                    }
                }
            }
        });

        let tcp = Tcp53Server::start(fat_zone()).unwrap();
        let client = FallbackClient::new(udp_addr, tcp.addr());
        let q = Message::query(3, DnsName::parse("big.a.com").unwrap(), RecordType::A);
        let resp = client.resolve(&q).unwrap();
        assert!(!resp.header.flags.tc, "TCP answer must be complete");
        assert_eq!(resp.first_a(), Some(Ipv4Addr::new(203, 0, 113, 8)));
        assert_eq!(client.tcp_fallbacks.get(), 1);

        stop.store(true, Ordering::Relaxed);
        let _ = handle.join();
        let _ = RData::A(Ipv4Addr::new(0, 0, 0, 0)); // keep import used
    }

    #[test]
    fn bounded_udp_server_truncates_nothing_for_small_zones() {
        let (server, addr) = BoundedUdpServer::start(zone()).unwrap();
        let client = Do53Client::new(addr);
        let q = Message::query(4, DnsName::parse("b.a.com").unwrap(), RecordType::A);
        let resp = client.resolve(&q).unwrap();
        assert!(!resp.header.flags.tc);
        server.shutdown();
    }
}
