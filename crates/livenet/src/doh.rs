//! DoH over real TCP sockets on loopback (RFC 8484 semantics, plain HTTP
//! framing — TLS cost modelling lives in the simulator).

use crate::zone::Zone;
use dohperf_dns::doh::{DohRequest, DNS_MESSAGE_CONTENT_TYPE};
use dohperf_dns::message::Message;
use dohperf_http::codec::{Method, Request, Response, StatusCode};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A threaded DoH server: accepts HTTP/1.1 connections, answers
/// `GET /dns-query?dns=…` and `POST /dns-query`.
pub struct DohServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl DohServer {
    /// Start the server.
    pub fn start(zone: Zone) -> io::Result<DohServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let zone = zone.clone();
                        std::thread::spawn(move || {
                            let _ = serve_connection(stream, zone);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(DohServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DohServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Serve one connection: handles pipelined requests until EOF.
fn serve_connection(mut stream: TcpStream, zone: Zone) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(1000)))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Try to parse a complete request from what we have.
        while let Ok((request, consumed)) = Request::decode(&buf) {
            buf.drain(..consumed);
            let response = handle_request(&request, &zone);
            stream.write_all(&response.encode())?;
            if request
                .headers
                .get("connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("close"))
            {
                return Ok(());
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(())
            }
            Err(e) => return Err(e),
        }
    }
}

fn handle_request(request: &Request, zone: &Zone) -> Response {
    let doh = match request.method {
        Method::Get => DohRequest {
            method: dohperf_dns::doh::DohMethod::Get,
            path: request.target.clone(),
            body: Vec::new(),
        },
        Method::Post => DohRequest {
            method: dohperf_dns::doh::DohMethod::Post,
            path: request.target.clone(),
            body: request.body.clone(),
        },
        _ => return Response::new(StatusCode::BAD_REQUEST),
    };
    if !request.target.starts_with("/dns-query") {
        return Response::new(StatusCode::NOT_FOUND);
    }
    let Ok(query) = doh.decode_message() else {
        return Response::new(StatusCode::BAD_REQUEST);
    };
    let answer = zone.answer(&query);
    match answer.encode() {
        Ok(wire) => {
            let mut resp = Response::new(StatusCode::OK).with_body(wire);
            resp.headers.set("Content-Type", DNS_MESSAGE_CONTENT_TYPE);
            resp
        }
        Err(_) => Response::new(StatusCode::INTERNAL_SERVER_ERROR),
    }
}

/// A DoH client over plain TCP.
pub struct DohClient {
    server: SocketAddr,
    /// I/O timeout.
    pub timeout: Duration,
}

impl DohClient {
    /// A client for one server.
    pub fn new(server: SocketAddr) -> DohClient {
        DohClient {
            server,
            timeout: Duration::from_millis(2000),
        }
    }

    /// Resolve one query via GET (the paper's measurement form).
    pub fn resolve_get(&self, query: &Message) -> io::Result<Message> {
        let doh = DohRequest::get(query)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let mut http = Request::new(Method::Get, doh.path);
        http.headers.set("Accept", DNS_MESSAGE_CONTENT_TYPE);
        http.headers.set("Connection", "close");
        self.exchange(&http)
    }

    /// Resolve one query via POST.
    pub fn resolve_post(&self, query: &Message) -> io::Result<Message> {
        let doh = DohRequest::post(query)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let mut http = Request::new(Method::Post, doh.path).with_body(doh.body);
        http.headers.set("Content-Type", DNS_MESSAGE_CONTENT_TYPE);
        http.headers.set("Connection", "close");
        self.exchange(&http)
    }

    /// Run several GET queries over one TCP connection (connection reuse,
    /// the DoHR scenario). Returns the responses in order.
    pub fn resolve_many_reused(&self, queries: &[Message]) -> io::Result<Vec<Message>> {
        let mut stream = TcpStream::connect(self.server)?;
        stream.set_read_timeout(Some(self.timeout))?;
        let mut responses = Vec::with_capacity(queries.len());
        for query in queries {
            let doh = DohRequest::get(query)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
            let mut http = Request::new(Method::Get, doh.path);
            http.headers.set("Accept", DNS_MESSAGE_CONTENT_TYPE);
            stream.write_all(&http.encode())?;
            let response = read_response(&mut stream)?;
            responses.push(decode_dns_body(&response)?);
        }
        Ok(responses)
    }

    fn exchange(&self, http: &Request) -> io::Result<Message> {
        let mut stream = TcpStream::connect(self.server)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.write_all(&http.encode())?;
        let response = read_response(&mut stream)?;
        decode_dns_body(&response)
    }
}

fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Ok((response, _)) = Response::decode(&buf) {
            return Ok(response);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Response::decode(&buf)
                    .map(|(r, _)| r)
                    .map_err(|e| io::Error::new(io::ErrorKind::UnexpectedEof, e.to_string()));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
}

fn decode_dns_body(response: &Response) -> io::Result<Message> {
    if response.status != StatusCode::OK {
        return Err(io::Error::other(format!("HTTP {}", response.status.0)));
    }
    Message::decode(&response.body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohperf_dns::name::DnsName;
    use dohperf_dns::types::{RCode, RecordType};
    use std::net::Ipv4Addr;

    fn serving_zone() -> Zone {
        let zone = Zone::new();
        zone.insert_wildcard("a.com", Ipv4Addr::new(203, 0, 113, 77));
        zone
    }

    #[test]
    fn get_resolution_over_real_tcp() {
        let server = DohServer::start(serving_zone()).unwrap();
        let client = DohClient::new(server.addr());
        let q = Message::query(5, DnsName::parse("u1.a.com").unwrap(), RecordType::A);
        let resp = client.resolve_get(&q).unwrap();
        assert_eq!(resp.first_a(), Some(Ipv4Addr::new(203, 0, 113, 77)));
        server.shutdown();
    }

    #[test]
    fn post_resolution_preserves_id() {
        let server = DohServer::start(serving_zone()).unwrap();
        let client = DohClient::new(server.addr());
        let q = Message::query(0xBEEF, DnsName::parse("u2.a.com").unwrap(), RecordType::A);
        let resp = client.resolve_post(&q).unwrap();
        assert_eq!(resp.header.id, 0xBEEF);
        assert_eq!(resp.header.rcode, RCode::NoError);
    }

    #[test]
    fn connection_reuse_answers_all() {
        let server = DohServer::start(serving_zone()).unwrap();
        let client = DohClient::new(server.addr());
        let queries: Vec<Message> = (0..10)
            .map(|i| {
                Message::query(
                    i,
                    DnsName::parse(&format!("r{i}.a.com")).unwrap(),
                    RecordType::A,
                )
            })
            .collect();
        let responses = client.resolve_many_reused(&queries).unwrap();
        assert_eq!(responses.len(), 10);
        for resp in responses {
            assert_eq!(resp.first_a(), Some(Ipv4Addr::new(203, 0, 113, 77)));
        }
    }

    #[test]
    fn nxdomain_over_doh() {
        let server = DohServer::start(serving_zone()).unwrap();
        let client = DohClient::new(server.addr());
        let q = Message::query(6, DnsName::parse("nope.example").unwrap(), RecordType::A);
        let resp = client.resolve_get(&q).unwrap();
        assert_eq!(resp.header.rcode, RCode::NxDomain);
    }

    #[test]
    fn bad_paths_rejected() {
        let server = DohServer::start(serving_zone()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(1000)))
            .unwrap();
        let mut req = Request::new(Method::Get, "/other?dns=AAAA");
        req.headers.set("Connection", "close");
        stream.write_all(&req.encode()).unwrap();
        let resp = read_response(&mut stream).unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn malformed_dns_param_is_400() {
        let server = DohServer::start(serving_zone()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(1000)))
            .unwrap();
        let mut req = Request::new(Method::Get, "/dns-query?dns=!!!!");
        req.headers.set("Connection", "close");
        stream.write_all(&req.encode()).unwrap();
        let resp = read_response(&mut stream).unwrap();
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
    }
}
