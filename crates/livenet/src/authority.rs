//! An authoritative server backed by zone data, including delegations.
//!
//! Unlike the flat [`crate::zone::Zone`] (which answers only A lookups),
//! an [`AuthorityServer`] holds arbitrary records parsed from a master
//! file and answers like a real authoritative: direct answers for names
//! it owns, *referrals* (authority NS + glue) for delegated subtrees, and
//! NXDOMAIN otherwise. Three of these chained together form a live
//! root/TLD/leaf hierarchy for the recursive-resolver tests.

use dohperf_dns::message::Message;
use dohperf_dns::name::DnsName;
use dohperf_dns::rdata::RData;
use dohperf_dns::record::ResourceRecord;
use dohperf_dns::types::{RCode, RecordType};
use dohperf_dns::zonefile::parse_zone;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Zone data plus the apex name.
#[derive(Debug, Clone)]
struct ZoneData {
    apex: DnsName,
    records: Vec<ResourceRecord>,
}

impl ZoneData {
    fn answer(&self, query: &Message) -> Message {
        let Some(q) = query.first_question() else {
            return Message::response(query, RCode::FormErr, Vec::new());
        };
        if !q.qname.is_subdomain_of(&self.apex) {
            return Message::response(query, RCode::Refused, Vec::new());
        }
        // Exact-name answers of the queried type.
        let direct: Vec<ResourceRecord> = self
            .records
            .iter()
            .filter(|rr| rr.name == q.qname && rr.rtype == q.qtype)
            .cloned()
            .collect();
        if !direct.is_empty() {
            let mut resp = Message::response(query, RCode::NoError, direct);
            resp.header.flags.aa = true;
            return resp;
        }
        // CNAME at the name?
        if let Some(cname) = self
            .records
            .iter()
            .find(|rr| rr.name == q.qname && rr.rtype == RecordType::Cname)
        {
            let mut answers = vec![cname.clone()];
            if let RData::Cname(target) = &cname.rdata {
                answers.extend(
                    self.records
                        .iter()
                        .filter(|rr| rr.name == *target && rr.rtype == q.qtype)
                        .cloned(),
                );
            }
            let mut resp = Message::response(query, RCode::NoError, answers);
            resp.header.flags.aa = true;
            return resp;
        }
        // Delegation: an NS set strictly below the apex covering the name.
        let delegation: Vec<&ResourceRecord> = self
            .records
            .iter()
            .filter(|rr| {
                rr.rtype == RecordType::Ns
                    && rr.name != self.apex
                    && q.qname.is_subdomain_of(&rr.name)
            })
            .collect();
        if !delegation.is_empty() {
            let mut resp = Message::response(query, RCode::NoError, Vec::new());
            for ns in &delegation {
                resp.authorities.push((*ns).clone());
                if let RData::Ns(ns_name) = &ns.rdata {
                    resp.additionals.extend(
                        self.records
                            .iter()
                            .filter(|g| g.name == *ns_name && g.rtype == RecordType::A)
                            .cloned(),
                    );
                }
            }
            return resp;
        }
        // Name exists with other types? NoData. Else NXDOMAIN.
        let exists = self.records.iter().any(|rr| rr.name == q.qname);
        let rcode = if exists {
            RCode::NoError
        } else {
            RCode::NxDomain
        };
        let mut resp = Message::response(query, rcode, Vec::new());
        resp.header.flags.aa = true;
        resp
    }
}

/// A threaded authoritative UDP server for one zone.
pub struct AuthorityServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl AuthorityServer {
    /// Parse a master file and start serving it. `apex` is the zone apex
    /// (`"."` for the root).
    pub fn start_from_zonefile(zone_text: &str, apex: &str) -> io::Result<AuthorityServer> {
        let apex = DnsName::parse(apex)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let records = parse_zone(zone_text, Some(&apex))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        Self::start(ZoneData { apex, records })
    }

    fn start(zone: ZoneData) -> io::Result<AuthorityServer> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        let addr = socket.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::spawn(move || {
            let mut buf = [0u8; 1500];
            while !flag.load(Ordering::Relaxed) {
                match socket.recv_from(&mut buf) {
                    Ok((len, peer)) => {
                        let Ok(query) = Message::decode(&buf[..len]) else {
                            continue;
                        };
                        let response = zone.answer(&query);
                        if let Ok(bytes) = response.encode() {
                            let _ = socket.send_to(&bytes, peer);
                        }
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(AuthorityServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the server and join its thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for AuthorityServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::do53::Do53Client;
    use std::net::Ipv4Addr;

    const LEAF_ZONE: &str = r#"
$ORIGIN a.com.
$TTL 300
@ IN NS ns1
ns1 IN A 203.0.113.53
www IN A 203.0.113.80
sub IN NS ns.sub
ns.sub IN A 203.0.113.99
mail IN MX 10 mx1
mx1 IN A 203.0.113.25
"#;

    fn leaf() -> AuthorityServer {
        AuthorityServer::start_from_zonefile(LEAF_ZONE, "a.com").unwrap()
    }

    fn ask(server: &AuthorityServer, name: &str, rtype: RecordType) -> Message {
        let client = Do53Client::new(server.addr());
        let q = Message::query(9, DnsName::parse(name).unwrap(), rtype);
        client.resolve(&q).unwrap()
    }

    #[test]
    fn authoritative_answer() {
        let server = leaf();
        let resp = ask(&server, "www.a.com", RecordType::A);
        assert_eq!(resp.header.rcode, RCode::NoError);
        assert!(resp.header.flags.aa);
        assert_eq!(resp.first_a(), Some(Ipv4Addr::new(203, 0, 113, 80)));
    }

    #[test]
    fn referral_with_glue_for_delegated_subtree() {
        let server = leaf();
        let resp = ask(&server, "deep.sub.a.com", RecordType::A);
        assert_eq!(resp.header.rcode, RCode::NoError);
        assert!(resp.answers.is_empty());
        assert_eq!(resp.authorities.len(), 1);
        assert!(matches!(resp.authorities[0].rdata, RData::Ns(_)));
        assert_eq!(resp.additionals.len(), 1);
        assert!(matches!(
            resp.additionals[0].rdata,
            RData::A(ip) if ip == Ipv4Addr::new(203, 0, 113, 99)
        ));
    }

    #[test]
    fn out_of_zone_refused() {
        let server = leaf();
        let resp = ask(&server, "elsewhere.net", RecordType::A);
        assert_eq!(resp.header.rcode, RCode::Refused);
    }

    #[test]
    fn nodata_vs_nxdomain() {
        let server = leaf();
        // mail.a.com exists (MX) but has no A record.
        let nodata = ask(&server, "mail.a.com", RecordType::A);
        assert_eq!(nodata.header.rcode, RCode::NoError);
        assert!(nodata.answers.is_empty());
        let nx = ask(&server, "ghost.a.com", RecordType::A);
        assert_eq!(nx.header.rcode, RCode::NxDomain);
    }

    #[test]
    fn mx_lookup_works() {
        let server = leaf();
        let resp = ask(&server, "mail.a.com", RecordType::Mx);
        assert_eq!(resp.answers.len(), 1);
        assert!(matches!(resp.answers[0].rdata, RData::Mx(10, _)));
    }
}
