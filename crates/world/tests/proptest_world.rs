//! Property-based tests for the world model.

use dohperf_netsim::rng::SimRng;
use dohperf_world::countries::{all_countries, country};
use dohperf_world::geoloc::GeolocationService;
use dohperf_world::population::{
    PopulationModel, MAX_CLIENTS_PER_COUNTRY, MIN_CLIENTS_PER_COUNTRY,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every sampled population respects the paper's per-country bounds
    /// and covers at least 224 countries, at any seed.
    #[test]
    fn population_bounds_hold_for_all_seeds(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let m = PopulationModel::sample(&mut rng);
        prop_assert!(m.countries().len() >= 224);
        for &n in m.counts() {
            prop_assert!((MIN_CLIENTS_PER_COUNTRY..=MAX_CLIENTS_PER_COUNTRY).contains(&n));
        }
        let total = m.total_clients();
        prop_assert!((15_000..40_000).contains(&total), "total {total}");
    }

    /// Client sites land within a plausible distance of their country.
    #[test]
    fn client_sites_near_their_country(seed in any::<u64>(), idx in 0usize..224) {
        let mut rng = SimRng::new(seed);
        let m = PopulationModel::sample(&mut rng);
        let idx = idx % m.countries().len();
        let c = m.countries()[idx];
        let sites = m.client_sites(idx, &mut rng);
        prop_assert_eq!(sites.len(), m.count(idx));
        for s in sites {
            // Within ~2500km of the centroid (cities can sit far from the
            // centroid in large countries like the US or Russia).
            let d = c.centroid().distance_km(&s.position);
            prop_assert!(d < 6_000.0, "{}: {d}km", c.iso);
        }
    }

    /// Geolocation mismatch frequency tracks the configured error rate.
    #[test]
    fn geoloc_error_rate_tracks_config(rate in 0.0f64..0.3, seed in any::<u64>()) {
        let isos: Vec<&'static str> = all_countries().iter().map(|c| c.iso).take(50).collect();
        let mut g = GeolocationService::new(SimRng::new(seed), rate, isos.clone());
        for i in 0..2_000 {
            g.allocate(isos[i % isos.len()]);
        }
        let observed = g.observed_error_rate();
        prop_assert!((observed - rate).abs() < 0.05, "observed {observed} configured {rate}");
    }

    /// Income groups partition GDP correctly for every table entry.
    #[test]
    fn income_thresholds_consistent(idx in 0usize..249) {
        let cs = all_countries();
        let c = &cs[idx % cs.len()];
        use dohperf_world::countries::IncomeGroup::*;
        let g = c.income_group();
        match g {
            Low => prop_assert!(c.gdp_per_capita < 1_046.0),
            LowerMiddle => prop_assert!((1_046.0..4_096.0).contains(&c.gdp_per_capita)),
            UpperMiddle => prop_assert!((4_096.0..12_696.0).contains(&c.gdp_per_capita)),
            High => prop_assert!(c.gdp_per_capita >= 12_696.0),
        }
    }
}

#[test]
fn every_super_proxy_country_exists() {
    for iso in dohperf_world::countries::SUPER_PROXY_COUNTRIES {
        assert!(country(iso).is_some());
    }
}
