//! Embedded world-city table.
//!
//! Used to place DoH provider points of presence: Cloudflare's 146 observed
//! PoPs, NextDNS's 107, Google's 26 and Quad9's fleet are drawn from these
//! cities by the `dohperf-providers` crate. Coordinates are approximate
//! city centres.

use dohperf_netsim::topology::GeoPoint;
use serde::{Deserialize, Serialize};

/// One city record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct City {
    /// City name.
    pub name: &'static str,
    /// ISO alpha-2 country code.
    pub country: &'static str,
    /// Latitude.
    pub lat: f64,
    /// Longitude.
    pub lon: f64,
}

impl City {
    /// Position as a geographic point.
    pub fn position(&self) -> GeoPoint {
        GeoPoint::new(self.lat, self.lon)
    }
}

/// All cities.
pub fn cities() -> &'static [City] {
    CITIES
}

/// Cities in a given country.
pub fn cities_in(iso: &str) -> impl Iterator<Item = &'static City> + '_ {
    CITIES
        .iter()
        .filter(move |c| c.country.eq_ignore_ascii_case(iso))
}

macro_rules! city_rows {
    ($( ($name:literal, $cc:literal, $lat:expr, $lon:expr) ),+ $(,)?) => {
        &[$( City { name: $name, country: $cc, lat: $lat, lon: $lon } ),+]
    };
}

static CITIES: &[City] = city_rows![
    // North America
    ("New York", "US", 40.71, -74.01),
    ("Los Angeles", "US", 34.05, -118.24),
    ("Chicago", "US", 41.88, -87.63),
    ("Dallas", "US", 32.78, -96.80),
    ("Miami", "US", 25.76, -80.19),
    ("Seattle", "US", 47.61, -122.33),
    ("San Jose", "US", 37.34, -121.89),
    ("Ashburn", "US", 39.04, -77.49),
    ("Atlanta", "US", 33.75, -84.39),
    ("Denver", "US", 39.74, -104.99),
    ("Phoenix", "US", 33.45, -112.07),
    ("Boston", "US", 42.36, -71.06),
    ("Houston", "US", 29.76, -95.37),
    ("Minneapolis", "US", 44.98, -93.27),
    ("Kansas City", "US", 39.10, -94.58),
    ("Salt Lake City", "US", 40.76, -111.89),
    ("Portland", "US", 45.52, -122.68),
    ("Columbus", "US", 39.96, -83.00),
    ("Toronto", "CA", 43.65, -79.38),
    ("Montreal", "CA", 45.50, -73.57),
    ("Vancouver", "CA", 49.28, -123.12),
    ("Calgary", "CA", 51.05, -114.07),
    ("Mexico City", "MX", 19.43, -99.13),
    ("Queretaro", "MX", 20.59, -100.39),
    ("Guatemala City", "GT", 14.63, -90.51),
    ("San Jose CR", "CR", 9.93, -84.08),
    ("Panama City", "PA", 8.98, -79.52),
    ("Kingston", "JM", 18.02, -76.80),
    ("Santo Domingo", "DO", 18.49, -69.93),
    ("San Juan", "PR", 18.47, -66.11),
    ("Hamilton", "BM", 32.29, -64.78),
    ("Port of Spain", "TT", 10.65, -61.51),
    ("Willemstad", "CW", 12.11, -68.93),
    // South America
    ("Sao Paulo", "BR", -23.55, -46.63),
    ("Rio de Janeiro", "BR", -22.91, -43.17),
    ("Fortaleza", "BR", -3.73, -38.52),
    ("Porto Alegre", "BR", -30.03, -51.23),
    ("Brasilia", "BR", -15.79, -47.88),
    ("Curitiba", "BR", -25.43, -49.27),
    ("Buenos Aires", "AR", -34.60, -58.38),
    ("Cordoba", "AR", -31.42, -64.18),
    ("Santiago", "CL", -33.45, -70.67),
    ("Bogota", "CO", 4.71, -74.07),
    ("Medellin", "CO", 6.24, -75.58),
    ("Lima", "PE", -12.05, -77.04),
    ("Quito", "EC", -0.18, -78.47),
    ("Caracas", "VE", 10.48, -66.90),
    ("La Paz", "BO", -16.50, -68.15),
    ("Asuncion", "PY", -25.26, -57.58),
    ("Montevideo", "UY", -34.90, -56.16),
    ("Georgetown", "GY", 6.80, -58.16),
    // Europe
    ("London", "GB", 51.51, -0.13),
    ("Manchester", "GB", 53.48, -2.24),
    ("Dublin", "IE", 53.35, -6.26),
    ("Paris", "FR", 48.86, 2.35),
    ("Marseille", "FR", 43.30, 5.37),
    ("Frankfurt", "DE", 50.11, 8.68),
    ("Berlin", "DE", 52.52, 13.40),
    ("Munich", "DE", 48.14, 11.58),
    ("Hamburg", "DE", 53.55, 9.99),
    ("Dusseldorf", "DE", 51.23, 6.78),
    ("Amsterdam", "NL", 52.37, 4.90),
    ("Brussels", "BE", 50.85, 4.35),
    ("Luxembourg City", "LU", 49.61, 6.13),
    ("Zurich", "CH", 47.37, 8.54),
    ("Geneva", "CH", 46.20, 6.14),
    ("Vienna", "AT", 48.21, 16.37),
    ("Madrid", "ES", 40.42, -3.70),
    ("Barcelona", "ES", 41.39, 2.17),
    ("Lisbon", "PT", 38.72, -9.14),
    ("Milan", "IT", 45.46, 9.19),
    ("Rome", "IT", 41.90, 12.50),
    ("Palermo", "IT", 38.12, 13.36),
    ("Athens", "GR", 37.98, 23.73),
    ("Nicosia", "CY", 35.19, 33.38),
    ("Valletta", "MT", 35.90, 14.51),
    ("Stockholm", "SE", 59.33, 18.06),
    ("Gothenburg", "SE", 57.71, 11.97),
    ("Oslo", "NO", 59.91, 10.75),
    ("Copenhagen", "DK", 55.68, 12.57),
    ("Helsinki", "FI", 60.17, 24.94),
    ("Reykjavik", "IS", 64.15, -21.94),
    ("Tallinn", "EE", 59.44, 24.75),
    ("Riga", "LV", 56.95, 24.11),
    ("Vilnius", "LT", 54.69, 25.28),
    ("Warsaw", "PL", 52.23, 21.01),
    ("Prague", "CZ", 50.08, 14.44),
    ("Bratislava", "SK", 48.15, 17.11),
    ("Budapest", "HU", 47.50, 19.04),
    ("Ljubljana", "SI", 46.06, 14.51),
    ("Zagreb", "HR", 45.81, 15.98),
    ("Belgrade", "RS", 44.79, 20.45),
    ("Sarajevo", "BA", 43.86, 18.41),
    ("Skopje", "MK", 42.00, 21.43),
    ("Tirana", "AL", 41.33, 19.82),
    ("Sofia", "BG", 42.70, 23.32),
    ("Bucharest", "RO", 44.43, 26.10),
    ("Chisinau", "MD", 47.01, 28.86),
    ("Kyiv", "UA", 50.45, 30.52),
    ("Minsk", "BY", 53.90, 27.57),
    ("Moscow", "RU", 55.76, 37.62),
    ("Saint Petersburg", "RU", 59.93, 30.34),
    ("Yekaterinburg", "RU", 56.84, 60.60),
    ("Novosibirsk", "RU", 55.03, 82.92),
    // Africa
    ("Cairo", "EG", 30.04, 31.24),
    ("Alexandria", "EG", 31.20, 29.92),
    ("Tunis", "TN", 36.81, 10.18),
    ("Algiers", "DZ", 36.74, 3.09),
    ("Casablanca", "MA", 33.57, -7.59),
    ("Dakar", "SN", 14.72, -17.47),
    ("Lagos", "NG", 6.52, 3.38),
    ("Abuja", "NG", 9.06, 7.50),
    ("Accra", "GH", 5.60, -0.19),
    ("Abidjan", "CI", 5.36, -4.01),
    ("Lome", "TG", 6.13, 1.22),
    ("Douala", "CM", 4.05, 9.70),
    ("Kinshasa", "CD", -4.44, 15.27),
    ("Luanda", "AO", -8.84, 13.23),
    ("Nairobi", "KE", -1.29, 36.82),
    ("Mombasa", "KE", -4.04, 39.67),
    ("Kampala", "UG", 0.35, 32.58),
    ("Dar es Salaam", "TZ", -6.79, 39.21),
    ("Kigali", "RW", -1.94, 30.06),
    ("Addis Ababa", "ET", 9.02, 38.75),
    ("Djibouti City", "DJ", 11.59, 43.15),
    ("Khartoum", "SD", 15.50, 32.56),
    ("Lusaka", "ZM", -15.39, 28.32),
    ("Harare", "ZW", -17.83, 31.05),
    ("Gaborone", "BW", -24.65, 25.91),
    ("Windhoek", "NA", -22.56, 17.08),
    ("Johannesburg", "ZA", -26.20, 28.05),
    ("Cape Town", "ZA", -33.93, 18.42),
    ("Durban", "ZA", -29.86, 31.03),
    ("Maputo", "MZ", -25.97, 32.58),
    ("Antananarivo", "MG", -18.88, 47.51),
    ("Port Louis", "MU", -20.16, 57.50),
    ("Saint-Denis", "RE", -20.88, 55.45),
    ("Ouagadougou", "BF", 12.37, -1.53),
    ("Bamako", "ML", 12.64, -8.00),
    ("Niamey", "NE", 13.51, 2.13),
    ("N'Djamena", "TD", 12.13, 15.06),
    ("Monrovia", "LR", 6.30, -10.80),
    // Middle East & Central/South Asia
    ("Istanbul", "TR", 41.01, 28.98),
    ("Ankara", "TR", 39.93, 32.86),
    ("Tbilisi", "GE", 41.72, 44.79),
    ("Yerevan", "AM", 40.18, 44.51),
    ("Baku", "AZ", 40.41, 49.87),
    ("Beirut", "LB", 33.89, 35.50),
    ("Tel Aviv", "IL", 32.09, 34.78),
    ("Amman", "JO", 31.96, 35.95),
    ("Baghdad", "IQ", 33.31, 44.37),
    ("Riyadh", "SA", 24.71, 46.68),
    ("Jeddah", "SA", 21.49, 39.19),
    ("Dubai", "AE", 25.20, 55.27),
    ("Abu Dhabi", "AE", 24.45, 54.38),
    ("Doha", "QA", 25.29, 51.53),
    ("Manama", "BH", 26.23, 50.59),
    ("Kuwait City", "KW", 29.38, 47.99),
    ("Muscat", "OM", 23.59, 58.41),
    ("Tehran", "IR", 35.69, 51.39),
    ("Karachi", "PK", 24.86, 67.01),
    ("Lahore", "PK", 31.55, 74.34),
    ("Islamabad", "PK", 33.69, 73.06),
    ("Mumbai", "IN", 19.08, 72.88),
    ("New Delhi", "IN", 28.61, 77.21),
    ("Chennai", "IN", 13.08, 80.27),
    ("Bangalore", "IN", 12.97, 77.59),
    ("Kolkata", "IN", 22.57, 88.36),
    ("Hyderabad", "IN", 17.39, 78.49),
    ("Colombo", "LK", 6.93, 79.85),
    ("Dhaka", "BD", 23.81, 90.41),
    ("Kathmandu", "NP", 27.72, 85.32),
    ("Almaty", "KZ", 43.26, 76.93),
    ("Tashkent", "UZ", 41.30, 69.24),
    ("Bishkek", "KG", 42.87, 74.59),
    // East & Southeast Asia
    ("Tokyo", "JP", 35.68, 139.69),
    ("Osaka", "JP", 34.69, 135.50),
    ("Seoul", "KR", 37.57, 126.98),
    ("Busan", "KR", 35.18, 129.08),
    ("Taipei", "TW", 25.03, 121.57),
    ("Hong Kong", "HK", 22.32, 114.17),
    ("Macau", "MO", 22.20, 113.55),
    ("Shanghai", "CN", 31.23, 121.47),
    ("Beijing", "CN", 39.90, 116.41),
    ("Ulaanbaatar", "MN", 47.89, 106.91),
    ("Hanoi", "VN", 21.03, 105.85),
    ("Ho Chi Minh City", "VN", 10.82, 106.63),
    ("Bangkok", "TH", 13.76, 100.50),
    ("Vientiane", "LA", 17.98, 102.63),
    ("Phnom Penh", "KH", 11.56, 104.92),
    ("Yangon", "MM", 16.87, 96.20),
    ("Kuala Lumpur", "MY", 3.139, 101.69),
    ("Singapore", "SG", 1.35, 103.82),
    ("Jakarta", "ID", -6.21, 106.85),
    ("Surabaya", "ID", -7.26, 112.75),
    ("Manila", "PH", 14.60, 120.98),
    ("Cebu", "PH", 10.32, 123.89),
    ("Bandar Seri Begawan", "BN", 4.94, 114.95),
    // Oceania
    ("Sydney", "AU", -33.87, 151.21),
    ("Melbourne", "AU", -37.81, 144.96),
    ("Brisbane", "AU", -27.47, 153.03),
    ("Perth", "AU", -31.95, 115.86),
    ("Adelaide", "AU", -34.93, 138.60),
    ("Auckland", "NZ", -36.85, 174.76),
    ("Wellington", "NZ", -41.29, 174.78),
    ("Port Moresby", "PG", -9.44, 147.18),
    ("Suva", "FJ", -18.14, 178.44),
    ("Noumea", "NC", -22.26, 166.45),
    ("Papeete", "PF", -17.54, -149.57),
    ("Hagatna", "GU", 13.48, 144.75),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::countries::country;

    #[test]
    fn every_city_country_exists() {
        for c in cities() {
            assert!(
                country(c.country).is_some(),
                "{} references unknown {}",
                c.name,
                c.country
            );
        }
    }

    #[test]
    fn coordinates_valid() {
        for c in cities() {
            assert!((-90.0..=90.0).contains(&c.lat), "{}", c.name);
            assert!((-180.0..=180.0).contains(&c.lon), "{}", c.name);
        }
    }

    #[test]
    fn enough_cities_for_pop_placement() {
        // Cloudflare's 146 observed PoPs are the largest requirement.
        assert!(cities().len() >= 146, "only {}", cities().len());
    }

    #[test]
    fn cities_in_filters_by_country() {
        let us: Vec<_> = cities_in("US").collect();
        assert!(us.len() >= 10);
        assert!(us.iter().all(|c| c.country == "US"));
        assert_eq!(cities_in("zz").count(), 0);
    }

    #[test]
    fn africa_is_covered() {
        // Quad9's distinguishing feature in Figure 5 is Sub-Saharan
        // coverage; the city table must support it.
        let african = ["SN", "NG", "KE", "ZA", "TZ", "UG", "RW", "AO", "CD"];
        for iso in african {
            assert!(cities_in(iso).count() >= 1, "{iso}");
        }
    }

    #[test]
    fn no_duplicate_city_names() {
        let mut seen = std::collections::HashSet::new();
        for c in cities() {
            assert!(seen.insert(c.name), "duplicate {}", c.name);
        }
    }
}
