//! A Maxmind-style geolocation service over synthetic /24 prefixes.
//!
//! The measurement pipeline never handles raw client IPs (mirroring the
//! paper's ethics stance): clients are identified by their /24 prefix. The
//! campaign allocates synthetic prefixes per country; this service maps a
//! prefix back to a country, with a configurable error rate standing in
//! for real-world geolocation inaccuracy. The paper discarded 0.88% of
//! data points where BrightData's country and Maxmind's disagreed — the
//! same filter is reproduced in `dohperf-core`.

use dohperf_netsim::rng::SimRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A /24 IPv4 prefix, stored as its 24 leading bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix24(pub u32);

impl Prefix24 {
    /// Render as dotted-quad with a trailing `.0/24`.
    pub fn to_cidr(&self) -> String {
        let v = self.0 << 8;
        format!(
            "{}.{}.{}.0/24",
            (v >> 24) & 0xFF,
            (v >> 16) & 0xFF,
            (v >> 8) & 0xFF
        )
    }
}

/// The geolocation database plus allocator.
#[derive(Debug)]
pub struct GeolocationService {
    /// prefix -> true country (what an ideal database would say).
    assignments: HashMap<Prefix24, &'static str>,
    /// prefix -> reported country, possibly wrong.
    reported: HashMap<Prefix24, &'static str>,
    next_prefix: u32,
    error_rate: f64,
    rng: SimRng,
    countries: Vec<&'static str>,
}

impl GeolocationService {
    /// Create a service with the given database error rate (fraction of
    /// prefixes whose reported country is wrong). The paper's mismatch
    /// discard removed 0.88% of data points, so `0.0088` is the calibrated
    /// default used by the campaign.
    pub fn new(rng: SimRng, error_rate: f64, countries: Vec<&'static str>) -> Self {
        Self::with_prefix_base(rng, error_rate, countries, 0)
    }

    /// Like [`GeolocationService::new`], but the first allocated prefix is
    /// `base` slots past the start of the pool. Sharded campaigns give each
    /// shard its own service with `base` set to the shard's first global
    /// client index, so the prefixes every shard hands out are disjoint and
    /// match the layout a single sequential allocator would have produced.
    pub fn with_prefix_base(
        rng: SimRng,
        error_rate: f64,
        countries: Vec<&'static str>,
        base: u32,
    ) -> Self {
        GeolocationService {
            assignments: HashMap::new(),
            reported: HashMap::new(),
            next_prefix: 0x0A_00_00 + base, // start inside 10.0.0.0/8 territory
            error_rate: error_rate.clamp(0.0, 1.0),
            rng,
            countries,
        }
    }

    /// Allocate a fresh /24 for a client in `country`. The reported
    /// location is usually correct, but with probability `error_rate` it is
    /// a uniformly random *other* country — the mislabeling the campaign's
    /// mismatch filter must catch.
    ///
    /// The mislabel decision draws from a stream forked per prefix, so the
    /// reported country is a pure function of (service seed, prefix) —
    /// shards that allocate disjoint prefix ranges of the same pool agree
    /// exactly with a sequential allocator, draws included.
    pub fn allocate(&mut self, country: &'static str) -> Prefix24 {
        let prefix = Prefix24(self.next_prefix);
        self.next_prefix += 1;
        self.assignments.insert(prefix, country);
        let mut draw = self.rng.fork_indexed("mislabel", prefix.0 as u64);
        let reported = if draw.chance(self.error_rate) && self.countries.len() > 1 {
            loop {
                let candidate = *draw.choose(&self.countries);
                if candidate != country {
                    break candidate;
                }
            }
        } else {
            country
        };
        self.reported.insert(prefix, reported);
        prefix
    }

    /// The country the database reports for a prefix (Maxmind's answer).
    pub fn lookup(&self, prefix: Prefix24) -> Option<&'static str> {
        self.reported.get(&prefix).copied()
    }

    /// The ground-truth country for a prefix (for validation only).
    pub fn ground_truth(&self, prefix: Prefix24) -> Option<&'static str> {
        self.assignments.get(&prefix).copied()
    }

    /// Number of allocated prefixes.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Fraction of allocated prefixes whose reported country is wrong.
    pub fn observed_error_rate(&self) -> f64 {
        if self.assignments.is_empty() {
            return 0.0;
        }
        let wrong = self
            .assignments
            .iter()
            .filter(|(p, truth)| self.reported.get(p) != Some(truth))
            .count();
        wrong as f64 / self.assignments.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service(error: f64) -> GeolocationService {
        GeolocationService::new(SimRng::new(7), error, vec!["US", "BR", "DE", "NG", "JP"])
    }

    #[test]
    fn allocation_is_unique_and_lookupable() {
        let mut g = service(0.0);
        let a = g.allocate("US");
        let b = g.allocate("BR");
        assert_ne!(a, b);
        assert_eq!(g.lookup(a), Some("US"));
        assert_eq!(g.lookup(b), Some("BR"));
        assert_eq!(g.ground_truth(a), Some("US"));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn zero_error_rate_never_mislabels() {
        let mut g = service(0.0);
        for _ in 0..500 {
            g.allocate("DE");
        }
        assert_eq!(g.observed_error_rate(), 0.0);
    }

    #[test]
    fn error_rate_close_to_configured() {
        let mut g = service(0.2);
        for _ in 0..5000 {
            g.allocate("US");
        }
        let observed = g.observed_error_rate();
        assert!((observed - 0.2).abs() < 0.03, "observed {observed}");
    }

    #[test]
    fn mislabeled_prefix_reports_a_different_country() {
        let mut g = service(1.0);
        for _ in 0..100 {
            let p = g.allocate("US");
            assert_ne!(g.lookup(p), Some("US"));
        }
    }

    #[test]
    fn unknown_prefix_is_none() {
        let g = service(0.0);
        assert_eq!(g.lookup(Prefix24(999_999)), None);
        assert!(g.is_empty());
    }

    #[test]
    fn cidr_rendering() {
        let p = Prefix24(0x0A_00_00);
        assert_eq!(p.to_cidr(), "10.0.0.0/24");
        let q = Prefix24(0x0A_00_01);
        assert_eq!(q.to_cidr(), "10.0.1.0/24");
    }

    #[test]
    fn prefix_base_offsets_allocations() {
        let mut g = GeolocationService::with_prefix_base(SimRng::new(7), 0.0, vec!["US", "BR"], 42);
        let p = g.allocate("US");
        assert_eq!(p, Prefix24(0x0A_00_00 + 42));
        assert_eq!(p.to_cidr(), "10.0.42.0/24");
    }

    #[test]
    fn sharded_bases_reproduce_sequential_layout() {
        // Two shards with bases 0 and 3 must hand out the same prefixes as
        // one sequential allocator serving 3 + 2 clients.
        let mut seq = service(0.0);
        let sequential: Vec<Prefix24> = (0..5).map(|_| seq.allocate("US")).collect();
        let mut a = GeolocationService::with_prefix_base(SimRng::new(7), 0.0, vec!["US"], 0);
        let mut b = GeolocationService::with_prefix_base(SimRng::new(7), 0.0, vec!["US"], 3);
        let sharded: Vec<Prefix24> = (0..3)
            .map(|_| a.allocate("US"))
            .chain((0..2).map(|_| b.allocate("US")))
            .collect();
        assert_eq!(sequential, sharded);
    }

    #[test]
    fn sharded_bases_reproduce_sequential_mislabels() {
        // With a high error rate, the *reported* countries (mislabel draws
        // included) must also be split-invariant: the draw is a pure
        // function of (seed, prefix), not of allocation order.
        let countries = vec!["US", "BR", "DE", "NG", "JP"];
        let mut seq = GeolocationService::new(SimRng::new(7), 0.5, countries.clone());
        let sequential: Vec<_> = (0..40)
            .map(|_| {
                let p = seq.allocate("US");
                (p, seq.lookup(p))
            })
            .collect();
        for split in [1usize, 7, 20, 39] {
            let mut a =
                GeolocationService::with_prefix_base(SimRng::new(7), 0.5, countries.clone(), 0);
            let mut b = GeolocationService::with_prefix_base(
                SimRng::new(7),
                0.5,
                countries.clone(),
                split as u32,
            );
            let sharded: Vec<_> = (0..split)
                .map(|_| {
                    let p = a.allocate("US");
                    (p, a.lookup(p))
                })
                .chain((split..40).map(|_| {
                    let p = b.allocate("US");
                    (p, b.lookup(p))
                }))
                .collect();
            assert_eq!(sequential, sharded, "split at {split}");
        }
    }

    #[test]
    fn error_rate_clamped() {
        let g = GeolocationService::new(SimRng::new(1), 5.0, vec!["US", "BR"]);
        assert!(g.error_rate <= 1.0);
    }
}
