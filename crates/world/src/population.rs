//! Client population sampling.
//!
//! Reproduces the shape of the paper's Figure 3: per-country client counts
//! between 10 and 282 with a median of about 103, totalling ~22,052 unique
//! clients over 224 countries/territories. Counts are drawn from a clamped
//! lognormal; client positions scatter around the country's cities (when
//! known) or its centroid.

use crate::cities::cities_in;
use crate::countries::{all_countries, Country, EXCLUDED_COUNTRIES};
use dohperf_netsim::rng::SimRng;
use dohperf_netsim::topology::GeoPoint;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Paper constants for the population shape.
pub const MIN_CLIENTS_PER_COUNTRY: usize = 10;
/// Maximum clients observed in any country (paper §7).
pub const MAX_CLIENTS_PER_COUNTRY: usize = 282;
/// Median clients per country (paper Figure 3).
pub const MEDIAN_CLIENTS_PER_COUNTRY: f64 = 103.0;
/// Total unique clients in the paper's dataset.
pub const TOTAL_CLIENTS: usize = 22_052;
/// Lognormal median parameter used by the sampler (see `sample`).
const SAMPLING_MEDIAN: f64 = 104.0;

/// One sampled client location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientSite {
    /// Country of residence (ground truth).
    pub country_index: usize,
    /// Geographic position.
    pub position: GeoPoint,
}

/// The sampled campaign population.
#[derive(Debug)]
pub struct PopulationModel {
    countries: Vec<&'static Country>,
    counts: Vec<usize>,
}

impl PopulationModel {
    /// Sample a population over every non-excluded country in the table.
    ///
    /// Counts are lognormal(median ≈ 103, σ = 0.75) clamped to
    /// `[10, 282]`, matching the paper's reported min/max/median; the total
    /// lands near 22,052 for the 230-odd usable countries.
    pub fn sample(rng: &mut SimRng) -> Self {
        let excluded: HashSet<&str> = EXCLUDED_COUNTRIES.iter().copied().collect();
        let countries: Vec<&'static Country> = all_countries()
            .iter()
            .filter(|c| !excluded.contains(c.iso))
            .collect();
        let mut counts = Vec::with_capacity(countries.len());
        for c in &countries {
            let mut cr = rng.fork(&format!("pop-{}", c.iso));
            // Wealthier, better-connected countries contribute more proxy
            // exit nodes, but the effect in BrightData's data is mild;
            // modulate the median by +-25% with bandwidth.
            let tilt = (c.bandwidth_mbps / 100.0).clamp(0.5, 1.5);
            // The sampling median sits below the *observed* median of 103
            // because the [10, 282] clamp is asymmetric: the upper clamp
            // pulls mass down from the lognormal tail, so a parameter of
            // ~88 yields the paper's observed median and ~22k total.
            let raw = cr.lognormal_median(SAMPLING_MEDIAN * (0.75 + 0.25 * tilt), 0.62);
            let count =
                (raw.round() as usize).clamp(MIN_CLIENTS_PER_COUNTRY, MAX_CLIENTS_PER_COUNTRY);
            counts.push(count);
        }
        PopulationModel { countries, counts }
    }

    /// Countries in the population, in table order.
    pub fn countries(&self) -> &[&'static Country] {
        &self.countries
    }

    /// Client count for country index `i`.
    pub fn count(&self, i: usize) -> usize {
        self.counts[i]
    }

    /// Per-country counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total clients across all countries.
    pub fn total_clients(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Generate the concrete client sites for country index `i`.
    ///
    /// Clients cluster around the country's known cities (where the city
    /// table has entries) with ~0.5° urban scatter, otherwise around the
    /// centroid with ~3° national scatter.
    pub fn client_sites(&self, i: usize, rng: &mut SimRng) -> Vec<ClientSite> {
        let country = self.countries[i];
        let anchors: Vec<GeoPoint> = cities_in(country.iso).map(|c| c.position()).collect();
        let mut sites = Vec::with_capacity(self.counts[i]);
        let mut cr = rng.fork(&format!("sites-{}", country.iso));
        for _ in 0..self.counts[i] {
            let (anchor, spread) = if anchors.is_empty() {
                (country.centroid(), 3.0)
            } else {
                (*cr.choose(&anchors), 0.5)
            };
            let lat = anchor.lat + cr.normal(0.0, spread);
            let lon = anchor.lon + cr.normal(0.0, spread);
            sites.push(ClientSite {
                country_index: i,
                position: GeoPoint::new(lat, lon),
            });
        }
        sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dohperf_stats_shim::median_usize;

    /// Tiny local median helper to avoid a circular dev-dependency on
    /// dohperf-stats.
    mod dohperf_stats_shim {
        pub fn median_usize(xs: &[usize]) -> f64 {
            let mut v = xs.to_vec();
            v.sort_unstable();
            if v.is_empty() {
                return f64::NAN;
            }
            let n = v.len();
            if n % 2 == 1 {
                v[n / 2] as f64
            } else {
                (v[n / 2 - 1] + v[n / 2]) as f64 / 2.0
            }
        }
    }

    fn model() -> PopulationModel {
        let mut rng = SimRng::new(2021);
        PopulationModel::sample(&mut rng)
    }

    #[test]
    fn counts_respect_paper_bounds() {
        let m = model();
        for (c, &n) in m.countries().iter().zip(m.counts()) {
            assert!(
                (MIN_CLIENTS_PER_COUNTRY..=MAX_CLIENTS_PER_COUNTRY).contains(&n),
                "{}: {n}",
                c.iso
            );
        }
    }

    #[test]
    fn median_near_paper_value() {
        let m = model();
        let med = median_usize(m.counts());
        assert!(
            (70.0..=140.0).contains(&med),
            "median {med} too far from the paper's 103"
        );
    }

    #[test]
    fn total_near_paper_value() {
        let m = model();
        let total = m.total_clients();
        assert!(
            (18_000..=27_000).contains(&total),
            "total {total} too far from the paper's 22,052"
        );
    }

    #[test]
    fn covers_at_least_224_countries() {
        let m = model();
        assert!(m.countries().len() >= 224, "{}", m.countries().len());
    }

    #[test]
    fn excluded_countries_absent() {
        let m = model();
        assert!(m.countries().iter().all(|c| c.iso != "CN" && c.iso != "KP"));
    }

    #[test]
    fn some_countries_reach_200_clients() {
        // Paper: at least 200 clients for 17% of countries.
        let m = model();
        let big = m.counts().iter().filter(|&&n| n >= 200).count();
        let frac = big as f64 / m.counts().len() as f64;
        assert!(frac > 0.05 && frac < 0.40, "frac {frac}");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = SimRng::new(5);
        let mut r2 = SimRng::new(5);
        let m1 = PopulationModel::sample(&mut r1);
        let m2 = PopulationModel::sample(&mut r2);
        assert_eq!(m1.counts(), m2.counts());
    }

    #[test]
    fn client_sites_are_in_plausible_range() {
        let m = model();
        let mut rng = SimRng::new(9);
        // Brazil has cities in the table -> tight scatter around them.
        let idx = m
            .countries()
            .iter()
            .position(|c| c.iso == "BR")
            .expect("BR present");
        let sites = m.client_sites(idx, &mut rng);
        assert_eq!(sites.len(), m.count(idx));
        for s in &sites {
            assert!((-90.0..=90.0).contains(&s.position.lat));
            // Brazil clients should be in the western hemisphere.
            assert!(s.position.lon < -20.0, "lon {}", s.position.lon);
        }
    }

    #[test]
    fn countryless_city_falls_back_to_centroid() {
        let m = model();
        let mut rng = SimRng::new(9);
        // Chad has a city (N'Djamena); Niue does not — exercise fallback.
        if let Some(idx) = m.countries().iter().position(|c| c.iso == "CK") {
            let sites = m.client_sites(idx, &mut rng);
            assert_eq!(sites.len(), m.count(idx));
        }
    }
}
