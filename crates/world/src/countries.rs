//! Embedded country and territory dataset.
//!
//! One row per country/territory with the covariates the paper's §6 models
//! consume. Values are **approximate public figures for 2021**:
//!
//! * `gdp_per_capita` — World Bank GDP per capita, current US$;
//! * `bandwidth_mbps` — Ookla Speedtest Global Index mean fixed broadband
//!   download speed;
//! * `as_count` — IPInfo's count of autonomous systems registered in the
//!   country.
//!
//! Coordinates are rough population centroids, adequate for the geodesic
//! latency model (country-scale errors are small next to intercontinental
//! distances). The table intentionally over-covers: the campaign samples
//! the 224 countries/territories of the paper from it, and the 25 excluded
//! ones (China, North Korea, …) are listed in [`EXCLUDED_COUNTRIES`].

use dohperf_netsim::latency::InfraProfile;
use dohperf_netsim::topology::GeoPoint;
use serde::{Deserialize, Serialize};

/// Continent-level region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Africa.
    Africa,
    /// Asia (including the Middle East).
    Asia,
    /// Europe.
    Europe,
    /// North and Central America and the Caribbean.
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Oceania.
    Oceania,
}

/// World Bank income classification (FY2021 GNI-per-capita thresholds,
/// applied here to GDP per capita as the paper does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IncomeGroup {
    /// Below $1,046.
    Low,
    /// $1,046 – $4,095.
    LowerMiddle,
    /// $4,096 – $12,695.
    UpperMiddle,
    /// Above $12,695.
    High,
}

/// One country/territory record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Country {
    /// ISO 3166-1 alpha-2 code.
    pub iso: &'static str,
    /// English short name.
    pub name: &'static str,
    /// Population-centroid latitude.
    pub lat: f64,
    /// Population-centroid longitude.
    pub lon: f64,
    /// Continent region.
    pub region: Region,
    /// GDP per capita, current US$ (~2021).
    pub gdp_per_capita: f64,
    /// Mean fixed broadband download speed, Mbps (~2021).
    pub bandwidth_mbps: f64,
    /// Registered autonomous systems (~2021).
    pub as_count: u32,
}

impl Country {
    /// Centroid as a geographic point.
    pub fn centroid(&self) -> GeoPoint {
        GeoPoint::new(self.lat, self.lon)
    }

    /// World Bank income group from GDP per capita.
    pub fn income_group(&self) -> IncomeGroup {
        if self.gdp_per_capita < 1_046.0 {
            IncomeGroup::Low
        } else if self.gdp_per_capita < 4_096.0 {
            IncomeGroup::LowerMiddle
        } else if self.gdp_per_capita < 12_696.0 {
            IncomeGroup::UpperMiddle
        } else {
            IncomeGroup::High
        }
    }

    /// FCC "fast Internet" check used as the paper's Bandwidth covariate
    /// (> 25 Mbps).
    pub fn has_fast_internet(&self) -> bool {
        self.bandwidth_mbps > 25.0
    }

    /// Residential infrastructure profile for the netsim latency model.
    pub fn residential_profile(&self) -> InfraProfile {
        InfraProfile::residential(self.bandwidth_mbps, self.as_count)
    }

    /// Data-centre infrastructure profile (for PoPs/servers hosted here).
    pub fn datacenter_profile(&self) -> InfraProfile {
        InfraProfile::datacenter(self.as_count)
    }

    /// ISO code as a fixed byte pair (for netsim node tagging).
    pub fn iso_bytes(&self) -> [u8; 2] {
        let b = self.iso.as_bytes();
        [b[0], b[1]]
    }
}

/// Countries where BrightData Super Proxies are located; Do53 measurements
/// through the proxy are invalid there and the RIPE Atlas remedy is used
/// (paper §3.5).
pub const SUPER_PROXY_COUNTRIES: [&str; 11] = [
    "US", "CA", "GB", "IN", "JP", "KR", "SG", "DE", "NL", "FR", "AU",
];

/// Countries/territories excluded from the paper's per-country analysis
/// (fewer than 10 clients completed all four DoH measurements — notably
/// China, where 99% of DoH queries were dropped).
pub const EXCLUDED_COUNTRIES: [&str; 25] = [
    "CN", "KP", "SA", "OM", "TM", "ER", "GQ", "VA", "NU", "TK", "BL", "MF", "SJ", "IO", "CX", "CC",
    "NF", "GS", "PN", "UM", "AQ", "BV", "HM", "TF", "AN",
];

/// The full embedded table.
pub fn all_countries() -> &'static [Country] {
    COUNTRIES
}

/// Look up by ISO alpha-2 code (case-insensitive).
pub fn country(iso: &str) -> Option<&'static Country> {
    COUNTRIES.iter().find(|c| c.iso.eq_ignore_ascii_case(iso))
}

macro_rules! country_rows {
    ($( ($iso:literal, $name:literal, $lat:expr, $lon:expr, $region:ident, $gdp:expr, $mbps:expr, $ases:expr) ),+ $(,)?) => {
        [$( Country {
            iso: $iso,
            name: $name,
            lat: $lat,
            lon: $lon,
            region: Region::$region,
            gdp_per_capita: $gdp,
            bandwidth_mbps: $mbps,
            as_count: $ases,
        } ),+]
    };
}

/// ~2021 snapshot. Sources: World Bank (GDP pc), Ookla Global Index
/// (fixed broadband Mbps), IPInfo (AS counts); values rounded.
static COUNTRIES: &[Country] = &country_rows![
    // --- North America, Central America, Caribbean ---
    (
        "US",
        "United States",
        39.8,
        -98.6,
        NorthAmerica,
        69288.0,
        195.0,
        17050
    ),
    (
        "CA",
        "Canada",
        56.1,
        -106.3,
        NorthAmerica,
        51988.0,
        160.0,
        1480
    ),
    (
        "MX",
        "Mexico",
        23.6,
        -102.6,
        NorthAmerica,
        10046.0,
        48.0,
        520
    ),
    (
        "GT",
        "Guatemala",
        15.8,
        -90.2,
        NorthAmerica,
        5026.0,
        22.0,
        48
    ),
    ("BZ", "Belize", 17.2, -88.7, NorthAmerica, 6228.0, 18.0, 8),
    (
        "SV",
        "El Salvador",
        13.8,
        -88.9,
        NorthAmerica,
        4551.0,
        32.0,
        28
    ),
    (
        "HN",
        "Honduras",
        14.8,
        -86.6,
        NorthAmerica,
        2772.0,
        17.0,
        35
    ),
    (
        "NI",
        "Nicaragua",
        12.9,
        -85.2,
        NorthAmerica,
        2090.0,
        24.0,
        23
    ),
    (
        "CR",
        "Costa Rica",
        9.7,
        -84.0,
        NorthAmerica,
        12472.0,
        46.0,
        80
    ),
    ("PA", "Panama", 8.5, -80.8, NorthAmerica, 14617.0, 88.0, 72),
    ("CU", "Cuba", 21.5, -79.5, NorthAmerica, 9500.0, 4.0, 4),
    ("JM", "Jamaica", 18.1, -77.3, NorthAmerica, 5184.0, 38.0, 27),
    ("HT", "Haiti", 19.0, -72.7, NorthAmerica, 1815.0, 8.0, 15),
    (
        "DO",
        "Dominican Republic",
        18.7,
        -70.2,
        NorthAmerica,
        8477.0,
        35.0,
        55
    ),
    (
        "PR",
        "Puerto Rico",
        18.2,
        -66.4,
        NorthAmerica,
        32874.0,
        110.0,
        30
    ),
    (
        "BS",
        "Bahamas",
        24.7,
        -77.8,
        NorthAmerica,
        27478.0,
        55.0,
        10
    ),
    (
        "BB",
        "Barbados",
        13.2,
        -59.5,
        NorthAmerica,
        17225.0,
        75.0,
        6
    ),
    (
        "TT",
        "Trinidad and Tobago",
        10.5,
        -61.3,
        NorthAmerica,
        15243.0,
        60.0,
        18
    ),
    (
        "BM",
        "Bermuda",
        32.3,
        -64.8,
        NorthAmerica,
        114090.0,
        170.0,
        8
    ),
    (
        "KY",
        "Cayman Islands",
        19.3,
        -81.3,
        NorthAmerica,
        86569.0,
        95.0,
        6
    ),
    (
        "AG",
        "Antigua and Barbuda",
        17.1,
        -61.8,
        NorthAmerica,
        15781.0,
        42.0,
        6
    ),
    ("DM", "Dominica", 15.4, -61.4, NorthAmerica, 7653.0, 30.0, 4),
    ("GD", "Grenada", 12.1, -61.7, NorthAmerica, 9011.0, 33.0, 4),
    (
        "KN",
        "Saint Kitts and Nevis",
        17.3,
        -62.7,
        NorthAmerica,
        18082.0,
        40.0,
        4
    ),
    (
        "LC",
        "Saint Lucia",
        13.9,
        -61.0,
        NorthAmerica,
        9414.0,
        38.0,
        5
    ),
    (
        "VC",
        "Saint Vincent and the Grenadines",
        13.2,
        -61.2,
        NorthAmerica,
        8666.0,
        32.0,
        4
    ),
    ("AW", "Aruba", 12.5, -70.0, NorthAmerica, 29342.0, 52.0, 4),
    ("CW", "Curacao", 12.2, -69.0, NorthAmerica, 17717.0, 58.0, 8),
    (
        "SX",
        "Sint Maarten",
        18.0,
        -63.1,
        NorthAmerica,
        29160.0,
        50.0,
        4
    ),
    (
        "TC",
        "Turks and Caicos Islands",
        21.8,
        -71.8,
        NorthAmerica,
        23880.0,
        45.0,
        3
    ),
    (
        "VG",
        "British Virgin Islands",
        18.4,
        -64.6,
        NorthAmerica,
        34246.0,
        48.0,
        3
    ),
    (
        "VI",
        "U.S. Virgin Islands",
        18.3,
        -64.9,
        NorthAmerica,
        39552.0,
        72.0,
        4
    ),
    (
        "AI",
        "Anguilla",
        18.2,
        -63.1,
        NorthAmerica,
        19891.0,
        40.0,
        2
    ),
    (
        "GL",
        "Greenland",
        64.2,
        -51.7,
        NorthAmerica,
        54571.0,
        65.0,
        2
    ),
    (
        "GP",
        "Guadeloupe",
        16.2,
        -61.5,
        NorthAmerica,
        23695.0,
        70.0,
        5
    ),
    (
        "MQ",
        "Martinique",
        14.6,
        -61.0,
        NorthAmerica,
        24713.0,
        72.0,
        5
    ),
    // --- South America ---
    (
        "BR",
        "Brazil",
        -14.2,
        -51.9,
        SouthAmerica,
        7507.0,
        90.0,
        8350
    ),
    (
        "AR",
        "Argentina",
        -34.6,
        -64.0,
        SouthAmerica,
        10636.0,
        52.0,
        950
    ),
    (
        "CL",
        "Chile",
        -33.5,
        -70.7,
        SouthAmerica,
        16265.0,
        180.0,
        310
    ),
    (
        "CO",
        "Colombia",
        4.6,
        -74.1,
        SouthAmerica,
        6104.0,
        46.0,
        400
    ),
    ("PE", "Peru", -12.0, -77.0, SouthAmerica, 6692.0, 55.0, 170),
    (
        "VE",
        "Venezuela",
        10.5,
        -66.9,
        SouthAmerica,
        3740.0,
        9.0,
        85
    ),
    (
        "EC",
        "Ecuador",
        -1.8,
        -78.2,
        SouthAmerica,
        5965.0,
        40.0,
        110
    ),
    (
        "BO",
        "Bolivia",
        -16.5,
        -68.2,
        SouthAmerica,
        3345.0,
        19.0,
        35
    ),
    (
        "PY",
        "Paraguay",
        -25.3,
        -57.6,
        SouthAmerica,
        5415.0,
        26.0,
        60
    ),
    (
        "UY",
        "Uruguay",
        -34.9,
        -56.2,
        SouthAmerica,
        17313.0,
        105.0,
        40
    ),
    ("GY", "Guyana", 6.8, -58.2, SouthAmerica, 9999.0, 22.0, 8),
    ("SR", "Suriname", 5.8, -55.2, SouthAmerica, 4869.0, 24.0, 8),
    (
        "GF",
        "French Guiana",
        4.9,
        -52.3,
        SouthAmerica,
        18000.0,
        45.0,
        4
    ),
    // --- Europe ---
    (
        "GB",
        "United Kingdom",
        54.0,
        -2.0,
        Europe,
        46510.0,
        92.0,
        2550
    ),
    ("IE", "Ireland", 53.3, -8.0, Europe, 99152.0, 95.0, 320),
    ("FR", "France", 46.6, 2.5, Europe, 43519.0, 190.0, 1650),
    ("DE", "Germany", 51.2, 10.4, Europe, 50802.0, 120.0, 2750),
    ("NL", "Netherlands", 52.2, 5.3, Europe, 58061.0, 160.0, 1200),
    ("BE", "Belgium", 50.6, 4.7, Europe, 51768.0, 110.0, 380),
    ("LU", "Luxembourg", 49.8, 6.1, Europe, 133590.0, 150.0, 90),
    ("CH", "Switzerland", 46.8, 8.2, Europe, 93457.0, 200.0, 750),
    ("AT", "Austria", 47.6, 14.1, Europe, 53268.0, 75.0, 600),
    ("ES", "Spain", 40.2, -3.6, Europe, 30116.0, 175.0, 850),
    ("PT", "Portugal", 39.6, -8.0, Europe, 24262.0, 125.0, 110),
    ("IT", "Italy", 42.8, 12.6, Europe, 35551.0, 80.0, 720),
    ("GR", "Greece", 39.1, 22.9, Europe, 20277.0, 35.0, 170),
    ("MT", "Malta", 35.9, 14.4, Europe, 33257.0, 105.0, 25),
    ("CY", "Cyprus", 35.1, 33.2, Europe, 30799.0, 52.0, 60),
    ("SE", "Sweden", 62.2, 17.6, Europe, 60239.0, 175.0, 900),
    ("NO", "Norway", 64.6, 12.7, Europe, 89203.0, 145.0, 420),
    ("DK", "Denmark", 56.0, 10.0, Europe, 67803.0, 185.0, 350),
    ("FI", "Finland", 64.5, 26.0, Europe, 53983.0, 105.0, 330),
    ("IS", "Iceland", 64.9, -18.6, Europe, 68384.0, 190.0, 50),
    ("EE", "Estonia", 58.7, 25.5, Europe, 27281.0, 82.0, 110),
    ("LV", "Latvia", 56.9, 24.9, Europe, 20642.0, 115.0, 160),
    ("LT", "Lithuania", 55.3, 23.9, Europe, 23433.0, 120.0, 140),
    ("PL", "Poland", 52.1, 19.4, Europe, 17841.0, 110.0, 1750),
    ("CZ", "Czechia", 49.8, 15.5, Europe, 26379.0, 65.0, 1050),
    ("SK", "Slovakia", 48.7, 19.7, Europe, 21088.0, 72.0, 240),
    ("HU", "Hungary", 47.2, 19.4, Europe, 18728.0, 135.0, 360),
    ("SI", "Slovenia", 46.1, 14.8, Europe, 29201.0, 85.0, 180),
    ("HR", "Croatia", 45.1, 15.2, Europe, 17399.0, 45.0, 130),
    (
        "BA",
        "Bosnia and Herzegovina",
        43.9,
        17.7,
        Europe,
        6916.0,
        28.0,
        80
    ),
    ("RS", "Serbia", 44.2, 20.9, Europe, 9215.0, 60.0, 200),
    ("ME", "Montenegro", 42.7, 19.4, Europe, 9367.0, 42.0, 25),
    (
        "MK",
        "North Macedonia",
        41.6,
        21.7,
        Europe,
        6721.0,
        38.0,
        60
    ),
    ("AL", "Albania", 41.2, 20.2, Europe, 6493.0, 33.0, 40),
    ("XK", "Kosovo", 42.6, 20.9, Europe, 4987.0, 40.0, 25),
    ("BG", "Bulgaria", 42.7, 25.5, Europe, 11635.0, 70.0, 480),
    ("RO", "Romania", 45.9, 25.0, Europe, 14862.0, 185.0, 900),
    ("MD", "Moldova", 47.2, 28.5, Europe, 5315.0, 85.0, 90),
    ("UA", "Ukraine", 48.4, 31.2, Europe, 4836.0, 62.0, 1850),
    ("BY", "Belarus", 53.7, 28.0, Europe, 7304.0, 50.0, 100),
    ("RU", "Russia", 55.8, 37.6, Europe, 12173.0, 78.0, 5700),
    ("GI", "Gibraltar", 36.1, -5.4, Europe, 61700.0, 80.0, 4),
    ("AD", "Andorra", 42.5, 1.5, Europe, 42137.0, 150.0, 4),
    ("MC", "Monaco", 43.7, 7.4, Europe, 173688.0, 180.0, 4),
    ("SM", "San Marino", 43.9, 12.5, Europe, 45320.0, 90.0, 4),
    ("LI", "Liechtenstein", 47.2, 9.5, Europe, 169049.0, 190.0, 6),
    ("FO", "Faroe Islands", 62.0, -6.8, Europe, 69010.0, 120.0, 3),
    ("JE", "Jersey", 49.2, -2.1, Europe, 55820.0, 130.0, 6),
    ("GG", "Guernsey", 49.5, -2.6, Europe, 52490.0, 110.0, 5),
    ("IM", "Isle of Man", 54.2, -4.5, Europe, 84600.0, 95.0, 6),
    // --- Africa ---
    ("EG", "Egypt", 26.8, 30.8, Africa, 3876.0, 42.0, 80),
    ("LY", "Libya", 26.3, 17.2, Africa, 6018.0, 9.0, 15),
    ("TN", "Tunisia", 34.0, 9.6, Africa, 3807.0, 11.0, 35),
    ("DZ", "Algeria", 28.0, 1.7, Africa, 3691.0, 10.0, 25),
    ("MA", "Morocco", 31.8, -7.1, Africa, 3497.0, 24.0, 50),
    ("EH", "Western Sahara", 24.2, -12.9, Africa, 2500.0, 8.0, 2),
    ("MR", "Mauritania", 21.0, -10.9, Africa, 2166.0, 6.0, 8),
    ("ML", "Mali", 17.6, -4.0, Africa, 918.0, 5.0, 10),
    ("NE", "Niger", 17.6, 8.1, Africa, 594.0, 4.0, 6),
    ("TD", "Chad", 15.5, 18.7, Africa, 696.0, 3.0, 4),
    ("SD", "Sudan", 12.9, 30.2, Africa, 764.0, 6.0, 14),
    ("SS", "South Sudan", 7.3, 30.3, Africa, 1120.0, 4.0, 5),
    ("ET", "Ethiopia", 9.1, 40.5, Africa, 944.0, 9.0, 5),
    ("ER", "Eritrea", 15.2, 39.8, Africa, 643.0, 2.0, 2),
    ("DJ", "Djibouti", 11.8, 42.6, Africa, 3364.0, 12.0, 5),
    ("SO", "Somalia", 5.2, 46.2, Africa, 447.0, 7.0, 12),
    ("KE", "Kenya", -0.0, 37.9, Africa, 2007.0, 21.0, 120),
    ("UG", "Uganda", 1.4, 32.3, Africa, 884.0, 12.0, 45),
    ("TZ", "Tanzania", -6.4, 34.9, Africa, 1136.0, 13.0, 55),
    ("RW", "Rwanda", -1.9, 29.9, Africa, 834.0, 16.0, 15),
    ("BI", "Burundi", -3.4, 29.9, Africa, 237.0, 4.0, 5),
    ("CD", "DR Congo", -4.0, 21.8, Africa, 584.0, 7.0, 30),
    (
        "CG",
        "Republic of the Congo",
        -0.2,
        15.8,
        Africa,
        2290.0,
        6.0,
        8
    ),
    ("GA", "Gabon", -0.8, 11.6, Africa, 8017.0, 14.0, 10),
    ("GQ", "Equatorial Guinea", 1.6, 10.3, Africa, 8462.0, 7.0, 4),
    ("CM", "Cameroon", 7.4, 12.3, Africa, 1662.0, 8.0, 25),
    (
        "CF",
        "Central African Republic",
        6.6,
        20.9,
        Africa,
        512.0,
        2.0,
        3
    ),
    ("NG", "Nigeria", 9.1, 8.7, Africa, 2085.0, 15.0, 210),
    ("BJ", "Benin", 9.3, 2.3, Africa, 1319.0, 10.0, 12),
    ("TG", "Togo", 8.6, 0.8, Africa, 992.0, 9.0, 8),
    ("GH", "Ghana", 7.9, -1.0, Africa, 2445.0, 28.0, 70),
    ("CI", "Ivory Coast", 7.5, -5.5, Africa, 2579.0, 26.0, 25),
    ("BF", "Burkina Faso", 12.2, -1.6, Africa, 893.0, 6.0, 10),
    ("LR", "Liberia", 6.5, -9.4, Africa, 673.0, 5.0, 8),
    ("SL", "Sierra Leone", 8.5, -11.8, Africa, 516.0, 4.0, 7),
    ("GN", "Guinea", 9.9, -9.7, Africa, 1174.0, 7.0, 10),
    ("GW", "Guinea-Bissau", 11.8, -15.2, Africa, 795.0, 4.0, 4),
    ("SN", "Senegal", 14.5, -14.5, Africa, 1606.0, 23.0, 20),
    ("GM", "Gambia", 13.4, -15.3, Africa, 772.0, 8.0, 6),
    ("CV", "Cape Verde", 15.1, -23.6, Africa, 3293.0, 14.0, 5),
    (
        "ST",
        "Sao Tome and Principe",
        0.2,
        6.6,
        Africa,
        2360.0,
        8.0,
        3
    ),
    ("AO", "Angola", -11.2, 17.9, Africa, 1953.0, 12.0, 35),
    ("ZM", "Zambia", -13.1, 27.8, Africa, 1137.0, 11.0, 30),
    ("MW", "Malawi", -13.3, 34.3, Africa, 643.0, 8.0, 15),
    ("MZ", "Mozambique", -18.7, 35.5, Africa, 492.0, 9.0, 25),
    ("ZW", "Zimbabwe", -19.0, 29.2, Africa, 1774.0, 10.0, 30),
    ("BW", "Botswana", -22.3, 24.7, Africa, 6805.0, 13.0, 20),
    ("NA", "Namibia", -22.6, 17.1, Africa, 4729.0, 16.0, 18),
    ("SZ", "Eswatini", -26.5, 31.5, Africa, 3978.0, 10.0, 8),
    ("LS", "Lesotho", -29.6, 28.2, Africa, 1166.0, 8.0, 6),
    ("ZA", "South Africa", -29.0, 25.1, Africa, 6994.0, 44.0, 620),
    ("MG", "Madagascar", -19.0, 46.9, Africa, 515.0, 16.0, 15),
    ("MU", "Mauritius", -20.3, 57.6, Africa, 8812.0, 26.0, 25),
    ("SC", "Seychelles", -4.7, 55.5, Africa, 13306.0, 24.0, 6),
    ("KM", "Comoros", -11.6, 43.3, Africa, 1578.0, 5.0, 3),
    ("RE", "Reunion", -21.1, 55.5, Africa, 24000.0, 90.0, 6),
    ("YT", "Mayotte", -12.8, 45.2, Africa, 11000.0, 40.0, 3),
    // --- Asia & Middle East ---
    ("TR", "Turkey", 39.0, 35.2, Asia, 9587.0, 32.0, 700),
    ("GE", "Georgia", 42.3, 43.4, Asia, 5042.0, 26.0, 110),
    ("AM", "Armenia", 40.1, 45.0, Asia, 4967.0, 40.0, 80),
    ("AZ", "Azerbaijan", 40.4, 47.8, Asia, 5384.0, 22.0, 45),
    ("SY", "Syria", 35.0, 38.5, Asia, 1266.0, 7.0, 6),
    ("LB", "Lebanon", 33.9, 35.9, Asia, 4136.0, 8.0, 120),
    ("IL", "Israel", 31.4, 35.1, Asia, 51430.0, 130.0, 320),
    ("PS", "Palestine", 31.9, 35.2, Asia, 3664.0, 18.0, 55),
    ("JO", "Jordan", 31.3, 36.4, Asia, 4406.0, 58.0, 50),
    ("IQ", "Iraq", 33.2, 43.7, Asia, 4686.0, 14.0, 90),
    ("SA", "Saudi Arabia", 24.2, 44.5, Asia, 23186.0, 85.0, 110),
    ("YE", "Yemen", 15.6, 48.0, Asia, 691.0, 4.0, 8),
    ("OM", "Oman", 21.0, 57.0, Asia, 19302.0, 62.0, 30),
    (
        "AE",
        "United Arab Emirates",
        24.0,
        54.0,
        Asia,
        44315.0,
        140.0,
        140
    ),
    ("QA", "Qatar", 25.3, 51.2, Asia, 66838.0, 98.0, 30),
    ("BH", "Bahrain", 26.0, 50.5, Asia, 26563.0, 60.0, 35),
    ("KW", "Kuwait", 29.3, 47.6, Asia, 32373.0, 105.0, 35),
    ("IR", "Iran", 32.6, 54.3, Asia, 4091.0, 18.0, 500),
    ("AF", "Afghanistan", 33.8, 66.0, Asia, 368.0, 4.0, 15),
    ("PK", "Pakistan", 30.4, 69.3, Asia, 1505.0, 11.0, 120),
    ("IN", "India", 21.1, 78.7, Asia, 2277.0, 55.0, 2050),
    ("NP", "Nepal", 28.2, 84.0, Asia, 1208.0, 32.0, 60),
    ("BT", "Bhutan", 27.4, 90.4, Asia, 3266.0, 22.0, 5),
    ("BD", "Bangladesh", 23.8, 90.3, Asia, 2458.0, 34.0, 700),
    ("LK", "Sri Lanka", 7.7, 80.7, Asia, 4013.0, 26.0, 35),
    ("MV", "Maldives", 3.4, 73.4, Asia, 10366.0, 40.0, 8),
    ("MM", "Myanmar", 19.2, 96.7, Asia, 1187.0, 18.0, 60),
    ("TH", "Thailand", 15.0, 101.0, Asia, 7233.0, 210.0, 400),
    ("LA", "Laos", 18.4, 103.8, Asia, 2551.0, 20.0, 15),
    ("KH", "Cambodia", 12.3, 104.9, Asia, 1591.0, 23.0, 50),
    ("VN", "Vietnam", 16.0, 107.8, Asia, 3694.0, 70.0, 350),
    ("MY", "Malaysia", 3.8, 102.2, Asia, 11371.0, 95.0, 260),
    ("SG", "Singapore", 1.35, 103.8, Asia, 72794.0, 245.0, 420),
    ("ID", "Indonesia", -2.5, 118.0, Asia, 4292.0, 23.0, 1600),
    ("BN", "Brunei", 4.5, 114.7, Asia, 31723.0, 70.0, 10),
    ("PH", "Philippines", 12.9, 121.8, Asia, 3549.0, 48.0, 450),
    ("TL", "Timor-Leste", -8.9, 125.7, Asia, 1517.0, 6.0, 4),
    ("CN", "China", 35.9, 104.2, Asia, 12556.0, 135.0, 1200),
    ("HK", "Hong Kong", 22.3, 114.2, Asia, 49800.0, 230.0, 1050),
    ("MO", "Macao", 22.2, 113.5, Asia, 43874.0, 140.0, 8),
    ("TW", "Taiwan", 23.7, 121.0, Asia, 33059.0, 135.0, 300),
    ("JP", "Japan", 36.2, 138.3, Asia, 39313.0, 150.0, 1100),
    ("KR", "South Korea", 36.5, 127.9, Asia, 34758.0, 210.0, 1150),
    ("KP", "North Korea", 40.3, 127.5, Asia, 640.0, 2.0, 1),
    ("MN", "Mongolia", 46.9, 103.8, Asia, 4566.0, 35.0, 35),
    ("KZ", "Kazakhstan", 48.0, 66.9, Asia, 10041.0, 45.0, 160),
    ("KG", "Kyrgyzstan", 41.2, 74.8, Asia, 1276.0, 30.0, 60),
    ("TJ", "Tajikistan", 38.9, 71.3, Asia, 897.0, 10.0, 20),
    ("UZ", "Uzbekistan", 41.4, 64.6, Asia, 1983.0, 28.0, 80),
    ("TM", "Turkmenistan", 38.9, 59.6, Asia, 7612.0, 4.0, 4),
    // --- Oceania ---
    (
        "AU",
        "Australia",
        -25.3,
        133.8,
        Oceania,
        60443.0,
        58.0,
        2500
    ),
    (
        "NZ",
        "New Zealand",
        -41.8,
        172.8,
        Oceania,
        48781.0,
        125.0,
        650
    ),
    (
        "PG",
        "Papua New Guinea",
        -6.5,
        144.2,
        Oceania,
        2916.0,
        7.0,
        20
    ),
    ("FJ", "Fiji", -17.8, 178.0, Oceania, 4647.0, 22.0, 10),
    (
        "SB",
        "Solomon Islands",
        -9.6,
        160.2,
        Oceania,
        2305.0,
        5.0,
        4
    ),
    ("VU", "Vanuatu", -15.4, 166.9, Oceania, 3073.0, 8.0, 5),
    (
        "NC",
        "New Caledonia",
        -21.3,
        165.6,
        Oceania,
        37160.0,
        60.0,
        6
    ),
    (
        "PF",
        "French Polynesia",
        -17.7,
        -149.4,
        Oceania,
        19915.0,
        35.0,
        6
    ),
    ("WS", "Samoa", -13.8, -172.1, Oceania, 4068.0, 10.0, 4),
    ("TO", "Tonga", -21.2, -175.2, Oceania, 4426.0, 12.0, 4),
    ("GU", "Guam", 13.4, 144.8, Oceania, 35905.0, 80.0, 8),
    (
        "MP",
        "Northern Mariana Islands",
        15.2,
        145.7,
        Oceania,
        20659.0,
        50.0,
        3
    ),
    (
        "AS",
        "American Samoa",
        -14.3,
        -170.7,
        Oceania,
        15743.0,
        30.0,
        3
    ),
    ("FM", "Micronesia", 6.9, 158.2, Oceania, 3571.0, 6.0, 3),
    (
        "MH",
        "Marshall Islands",
        7.1,
        171.2,
        Oceania,
        4337.0,
        8.0,
        3
    ),
    ("PW", "Palau", 7.5, 134.6, Oceania, 13772.0, 18.0, 3),
    (
        "CK",
        "Cook Islands",
        -21.2,
        -159.8,
        Oceania,
        21603.0,
        15.0,
        2
    ),
    // --- remainder: excluded/rare territories to reach BrightData's span ---
    ("SH", "Saint Helena", -15.9, -5.7, Africa, 7800.0, 3.0, 1),
    (
        "FK",
        "Falkland Islands",
        -51.8,
        -59.5,
        SouthAmerica,
        70800.0,
        10.0,
        2
    ),
    ("NU", "Niue", -19.1, -169.9, Oceania, 15586.0, 8.0, 1),
    ("TK", "Tokelau", -9.2, -171.8, Oceania, 6275.0, 4.0, 1),
    (
        "WF",
        "Wallis and Futuna",
        -13.3,
        -176.2,
        Oceania,
        12640.0,
        6.0,
        1
    ),
    (
        "PM",
        "Saint Pierre and Miquelon",
        46.9,
        -56.3,
        NorthAmerica,
        34900.0,
        20.0,
        1
    ),
    ("KI", "Kiribati", 1.9, -157.4, Oceania, 1765.0, 4.0, 2),
    ("NR", "Nauru", -0.5, 166.9, Oceania, 10125.0, 6.0, 1),
    ("TV", "Tuvalu", -7.1, 177.6, Oceania, 5370.0, 5.0, 1),
    (
        "MS",
        "Montserrat",
        16.7,
        -62.2,
        NorthAmerica,
        13890.0,
        25.0,
        2
    ),
    ("VA", "Vatican City", 41.9, 12.5, Europe, 80000.0, 100.0, 1),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table_has_no_duplicate_isos() {
        let mut seen = HashSet::new();
        for c in all_countries() {
            assert!(seen.insert(c.iso), "duplicate iso {}", c.iso);
        }
    }

    #[test]
    fn table_covers_the_papers_span() {
        // BrightData reached 224 countries/territories after exclusions;
        // our table must offer at least that many non-excluded entries.
        let excluded: HashSet<&str> = EXCLUDED_COUNTRIES.iter().copied().collect();
        let usable = all_countries()
            .iter()
            .filter(|c| !excluded.contains(c.iso))
            .count();
        assert!(usable >= 224, "only {usable} usable countries");
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(country("us").unwrap().name, "United States");
        assert_eq!(country("US").unwrap().name, "United States");
        assert!(country("ZZ").is_none());
    }

    #[test]
    fn named_countries_from_the_paper_exist() {
        // Countries named in the paper's narrative must be present.
        for iso in [
            "US", "CA", "GB", "IN", "JP", "KR", "SG", "DE", "NL", "FR", "AU", // super proxies
            "IE", "BR", "SE", "IT", // ground truth
            "TD", "BM", "ID", "SD", "SN", "CN",
        ] {
            assert!(country(iso).is_some(), "missing {iso}");
        }
    }

    #[test]
    fn income_groups_match_thresholds() {
        assert_eq!(country("TD").unwrap().income_group(), IncomeGroup::Low);
        assert_eq!(
            country("IN").unwrap().income_group(),
            IncomeGroup::LowerMiddle
        );
        assert_eq!(
            country("BR").unwrap().income_group(),
            IncomeGroup::UpperMiddle
        );
        assert_eq!(country("US").unwrap().income_group(), IncomeGroup::High);
    }

    #[test]
    fn fast_internet_threshold() {
        assert!(country("US").unwrap().has_fast_internet());
        assert!(!country("TD").unwrap().has_fast_internet());
        assert!(!country("ID").unwrap().has_fast_internet()); // 23 Mbps < 25
    }

    #[test]
    fn coordinates_are_valid() {
        for c in all_countries() {
            assert!((-90.0..=90.0).contains(&c.lat), "{} lat", c.iso);
            assert!((-180.0..=180.0).contains(&c.lon), "{} lon", c.iso);
            assert!(c.gdp_per_capita > 0.0);
            assert!(c.bandwidth_mbps > 0.0);
            assert!(c.as_count >= 1);
        }
    }

    #[test]
    fn super_proxy_countries_exist() {
        for iso in SUPER_PROXY_COUNTRIES {
            let c = country(iso).unwrap();
            // All Super Proxy locations except India are high-income.
            if iso != "IN" {
                assert_eq!(c.income_group(), IncomeGroup::High, "{iso}");
            }
        }
    }

    #[test]
    fn profiles_reflect_covariates() {
        let chad = country("TD").unwrap().residential_profile();
        let us = country("US").unwrap().residential_profile();
        assert!(chad.last_mile_median_ms > us.last_mile_median_ms);
        assert!(chad.path_inflation > us.path_inflation);
    }

    #[test]
    fn regions_are_plausible() {
        assert_eq!(country("NG").unwrap().region, Region::Africa);
        assert_eq!(country("BR").unwrap().region, Region::SouthAmerica);
        assert_eq!(country("JP").unwrap().region, Region::Asia);
        assert_eq!(country("DE").unwrap().region, Region::Europe);
        assert_eq!(country("AU").unwrap().region, Region::Oceania);
        assert_eq!(country("MX").unwrap().region, Region::NorthAmerica);
    }

    #[test]
    fn iso_bytes_roundtrip() {
        assert_eq!(country("US").unwrap().iso_bytes(), *b"US");
    }
}
