//! # dohperf-world
//!
//! The world model underlying the global measurement campaign:
//!
//! * [`countries`] — an embedded table of 230+ countries and territories
//!   with centroid coordinates, region, GDP per capita, national fixed
//!   broadband speed and autonomous-system count. Values are approximate
//!   public figures for 2021 (World Bank, Ookla Speedtest Global Index,
//!   IPInfo) — the regression covariates of the paper's §6.
//! * [`cities`] — an embedded table of major world cities used to place
//!   DoH provider points of presence.
//! * [`geoloc`] — a Maxmind-style /24-prefix geolocation service with a
//!   configurable mislabeling rate (the paper discarded 0.88% of points on
//!   BrightData/Maxmind country mismatches).
//! * [`population`] — deterministic sampling of the per-country client
//!   population, calibrated to the paper's Figure 3 distribution (10–282
//!   clients per country, median ≈ 103, 22,052 total).

pub mod cities;
pub mod countries;
pub mod geoloc;
pub mod population;

pub use cities::{cities, cities_in, City};
pub use countries::{
    all_countries, country, Country, IncomeGroup, Region, EXCLUDED_COUNTRIES, SUPER_PROXY_COUNTRIES,
};
pub use geoloc::{GeolocationService, Prefix24};
pub use population::{ClientSite, PopulationModel};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::cities::{cities, cities_in, City};
    pub use crate::countries::{
        all_countries, country, Country, IncomeGroup, Region, EXCLUDED_COUNTRIES,
        SUPER_PROXY_COUNTRIES,
    };
    pub use crate::geoloc::{GeolocationService, Prefix24};
    pub use crate::population::{ClientSite, PopulationModel};
}
