//! Offline stand-in for the `bytes` crate: the `BytesMut`/`BufMut`
//! surface the DNS wire encoder uses, backed by a plain `Vec<u8>`.
//! Network-grade zero-copy buffer management is unnecessary here — the
//! simulator only ever builds small messages and immediately copies them.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Copy the contents out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    /// Drop the contents.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Self {
        buf.inner
    }
}

/// Big-endian append operations, as in `bytes::BufMut`.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a `u16` in network byte order.
    fn put_u16(&mut self, v: u16);
    /// Append a `u32` in network byte order.
    fn put_u32(&mut self, v: u32);
    /// Append a slice verbatim.
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.inner.extend_from_slice(v);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_operations_append_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_slice(b"xy");
        assert_eq!(
            buf.to_vec(),
            vec![0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF, b'x', b'y']
        );
        assert_eq!(buf.len(), 9);
        assert!(!buf.is_empty());
    }

    #[test]
    fn index_writes_patch_in_place() {
        let mut buf = BytesMut::new();
        buf.put_u16(0);
        buf[0] = 0xC0;
        buf[1] = 0x0C;
        assert_eq!(buf.to_vec(), vec![0xC0, 0x0C]);
    }
}
