//! Offline stand-in for `criterion`: the bench-target API surface the
//! workspace uses (`criterion_group!`/`criterion_main!`, `Criterion`,
//! benchmark groups, `Bencher::iter`, `black_box`, `BenchmarkId`),
//! backed by a straightforward wall-clock harness. It calibrates an
//! iteration count per benchmark, takes `sample_size` samples, and
//! reports the median time per iteration. No statistical analysis,
//! HTML reports, or baseline comparison — just honest numbers on stderr.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Target cumulative time for one measurement sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(20);
/// Cap on the total measurement time of one benchmark.
const BENCH_BUDGET: Duration = Duration::from_secs(3);

/// A named benchmark (or benchmark-with-parameter) identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` for the calibrated iteration count, timing only the
    /// loop itself (setup done before `iter` is excluded).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration pass: one iteration, to size the per-sample loop.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let once = probe.elapsed.max(Duration::from_nanos(1));
    let iters = (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;

    let sample_size = sample_size.max(5);
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    let bench_start = Instant::now();
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        if bench_start.elapsed() > BENCH_BUDGET && per_iter_ns.len() >= 5 {
            break;
        }
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let (value, unit) = if median >= 1e9 {
        (median / 1e9, "s")
    } else if median >= 1e6 {
        (median / 1e6, "ms")
    } else if median >= 1e3 {
        (median / 1e3, "µs")
    } else {
        (median, "ns")
    };
    eprintln!(
        "{label:<50} time: {value:>9.3} {unit}/iter  ({} samples × {iters} iters)",
        per_iter_ns.len()
    );
    // Wall-clock medians are host-dependent, so they land in the per-run
    // section of the shared telemetry snapshot (same JSON schema as
    // `repro --metrics`).
    dohperf_telemetry::global()
        .per_run_gauge(&format!("bench.{label}.ns_per_iter"))
        .set(median.round() as i64);
}

/// Write the telemetry snapshot (benchmark medians included) to the path
/// named by `DOHPERF_BENCH_METRICS`, when set. Called by `criterion_main!`
/// after all groups finish.
pub fn write_metrics_if_requested() {
    if let Some(path) = std::env::var_os("DOHPERF_BENCH_METRICS") {
        let path = std::path::PathBuf::from(path);
        match dohperf_telemetry::write_snapshot(&path) {
            Ok(_) => eprintln!("bench metrics written to {}", path.display()),
            Err(e) => eprintln!("bench metrics write to {} failed: {e}", path.display()),
        }
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, 20, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measurement samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Run a parameterised benchmark within this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_metrics_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7u64), &7u64, |b, &x| {
            b.iter(|| {
                total += x;
            })
        });
        group.finish();
        assert!(total > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(0.5).id, "0.5");
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
    }
}
