//! Offline stand-in for `serde`.
//!
//! Nothing in this workspace serialises through serde's generic machinery
//! — dataset export is hand-rolled JSON/CSV in `dohperf-core::export` —
//! but the schema types derive `Serialize`/`Deserialize` to document
//! interchange intent and keep the door open for a real serde swap-in.
//! This shim keeps those derives compiling offline: the traits are
//! markers and the derives emit empty impls.

/// Marker for types whose schema is export-stable.
pub trait Serialize {}

/// Marker for types intended to round-trip back in.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
