//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`/`boxed`, numeric-range and tuple strategies, `any::<T>()`,
//! `collection::vec`, `string::string_regex` (a generator for a practical
//! regex subset), `prop_oneof!`, and the `prop_assert*`/`prop_assume!`
//! macros. Differences from the real crate, deliberate for an offline
//! test environment:
//!
//! - **No shrinking.** A failing case reports its inputs via the panic
//!   message (`prop_assert*` include the offending values) but is not
//!   minimised.
//! - **Deterministic seeding.** Each test derives its RNG seed from its
//!   own name, so failures reproduce exactly on re-run; there is no
//!   persistence file.

pub mod test_runner {
    use rand::{RngCore, SeedableRng};

    /// Per-block runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property is violated; the runner panics with this message.
        Fail(String),
        /// The inputs were rejected by `prop_assume!`; the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Outcome of one test-case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The generator driving value generation for one property.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub(crate) inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Deterministic generator seeded from the test's name, so each
        /// property sees a stable stream across runs.
        pub fn for_test(test_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(h),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Generate-only: strategies draw from the runner's RNG and never
    /// shrink.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Picks uniformly among alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.inner.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.inner.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.inner.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.inner.gen_range(self.clone())
        }
    }

    // Signed ranges sample through an unsigned offset from the start.
    macro_rules! signed_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as $u;
                    let off = rng.inner.gen_range(0..span);
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64);

    /// A string literal is a regex strategy (proptest's `&str` impl).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::string_regex(self)
                .unwrap_or_else(|e| panic!("invalid regex literal {self:?}: {e:?}"))
                .generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical uniform strategy, reachable via [`any`].
    pub trait Arbitrary: Sized {
        /// Draw one value uniformly.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! uniform_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.inner.gen()
                }
            }
        )*};
    }

    uniform_arbitrary!(u8, u16, u32, u64, usize, bool, f64, f32);

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            rng.inner.gen::<u32>() as i32
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.inner.gen::<u64>() as i64
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.inner.gen();
            }
            out
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The admissible lengths of a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi_excl: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_excl: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.inner.gen_range(self.size.lo..self.size.hi_excl);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod string {
    //! String generation from a regex subset.
    //!
    //! Supports literals, `.`, escaped characters, groups `(...)`,
    //! alternation `|`, character classes with ranges, negation `[^...]`,
    //! nesting and Java-style `&&` intersection (`[!-~&&[^ ]]`), and the
    //! quantifiers `?`, `*`, `+`, `{m}`, `{m,}`, `{m,n}`. Unbounded
    //! quantifiers generate at most [`UNBOUNDED_MAX`] repetitions.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Repetition cap for `*`, `+` and `{m,}`.
    pub const UNBOUNDED_MAX: u32 = 8;

    /// A regex the generator cannot handle.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    #[derive(Debug, Clone)]
    enum Node {
        Seq(Vec<Node>),
        Alt(Vec<Node>),
        Lit(char),
        /// Flattened character class: the allowed characters.
        Class(Vec<char>),
        Repeat {
            node: Box<Node>,
            min: u32,
            max: u32,
        },
    }

    /// The strategy returned by [`string_regex`].
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        root: Node,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            emit(&self.root, rng, &mut out);
            out
        }
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Seq(items) => {
                for item in items {
                    emit(item, rng, out);
                }
            }
            Node::Alt(branches) => {
                let idx = rng.inner.gen_range(0..branches.len());
                emit(&branches[idx], rng, out);
            }
            Node::Lit(c) => out.push(*c),
            Node::Class(chars) => {
                let idx = rng.inner.gen_range(0..chars.len());
                out.push(chars[idx]);
            }
            Node::Repeat { node, min, max } => {
                let n = rng.inner.gen_range(*min..=*max);
                for _ in 0..n {
                    emit(node, rng, out);
                }
            }
        }
    }

    /// Build a strategy producing strings matched by `pattern`.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = Parser { chars, pos: 0 };
        let root = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return Err(Error(format!(
                "unexpected {:?} at offset {}",
                p.chars[p.pos], p.pos
            )));
        }
        Ok(RegexGeneratorStrategy { root })
    }

    struct Parser {
        chars: Vec<char>,
        pos: usize,
    }

    impl Parser {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn bump(&mut self) -> Option<char> {
            let c = self.peek();
            if c.is_some() {
                self.pos += 1;
            }
            c
        }

        fn eat(&mut self, want: char) -> Result<(), Error> {
            match self.bump() {
                Some(c) if c == want => Ok(()),
                other => Err(Error(format!("expected {want:?}, found {other:?}"))),
            }
        }

        fn parse_alt(&mut self) -> Result<Node, Error> {
            let mut branches = vec![self.parse_seq()?];
            while self.peek() == Some('|') {
                self.bump();
                branches.push(self.parse_seq()?);
            }
            Ok(if branches.len() == 1 {
                branches.pop().unwrap()
            } else {
                Node::Alt(branches)
            })
        }

        fn parse_seq(&mut self) -> Result<Node, Error> {
            let mut items = Vec::new();
            while let Some(c) = self.peek() {
                if c == ')' || c == '|' {
                    break;
                }
                let atom = self.parse_atom()?;
                items.push(self.parse_quantifier(atom)?);
            }
            Ok(if items.len() == 1 {
                items.pop().unwrap()
            } else {
                Node::Seq(items)
            })
        }

        fn parse_atom(&mut self) -> Result<Node, Error> {
            match self.bump() {
                Some('(') => {
                    let inner = self.parse_alt()?;
                    self.eat(')')?;
                    Ok(inner)
                }
                Some('[') => {
                    let set = self.parse_class_set()?;
                    self.eat(']')?;
                    let chars = set_to_chars(&set);
                    if chars.is_empty() {
                        return Err(Error("empty character class".into()));
                    }
                    Ok(Node::Class(chars))
                }
                Some('.') => Ok(Node::Class((0x20u8..=0x7E).map(char::from).collect())),
                Some('\\') => match self.bump() {
                    Some('d') => Ok(Node::Class(('0'..='9').collect())),
                    Some('w') => {
                        let mut chars: Vec<char> = ('a'..='z').collect();
                        chars.extend('A'..='Z');
                        chars.extend('0'..='9');
                        chars.push('_');
                        Ok(Node::Class(chars))
                    }
                    Some('s') => Ok(Node::Class(vec![' ', '\t'])),
                    Some('n') => Ok(Node::Lit('\n')),
                    Some('t') => Ok(Node::Lit('\t')),
                    Some(c) => Ok(Node::Lit(c)),
                    None => Err(Error("dangling escape".into())),
                },
                Some(c) if c == '*' || c == '+' || c == '?' => {
                    Err(Error(format!("dangling quantifier {c:?}")))
                }
                Some(c) => Ok(Node::Lit(c)),
                None => Err(Error("unexpected end of pattern".into())),
            }
        }

        fn parse_quantifier(&mut self, atom: Node) -> Result<Node, Error> {
            let (min, max) = match self.peek() {
                Some('?') => {
                    self.bump();
                    (0, 1)
                }
                Some('*') => {
                    self.bump();
                    (0, UNBOUNDED_MAX)
                }
                Some('+') => {
                    self.bump();
                    (1, UNBOUNDED_MAX)
                }
                Some('{') => {
                    self.bump();
                    let min = self.parse_number()?;
                    let max = match self.peek() {
                        Some(',') => {
                            self.bump();
                            if self.peek() == Some('}') {
                                min + UNBOUNDED_MAX
                            } else {
                                self.parse_number()?
                            }
                        }
                        _ => min,
                    };
                    self.eat('}')?;
                    if max < min {
                        return Err(Error(format!("bad repetition {{{min},{max}}}")));
                    }
                    (min, max)
                }
                _ => return Ok(atom),
            };
            Ok(Node::Repeat {
                node: Box::new(atom),
                min,
                max,
            })
        }

        fn parse_number(&mut self) -> Result<u32, Error> {
            let mut digits = String::new();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    digits.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            digits
                .parse()
                .map_err(|_| Error("expected number in repetition".into()))
        }

        /// Parse a class body (after `[`, up to but not consuming `]`)
        /// into an ASCII membership set, handling `^` negation, ranges,
        /// nested classes, and `&&` intersection.
        fn parse_class_set(&mut self) -> Result<[bool; 128], Error> {
            let negated = if self.peek() == Some('^') {
                self.bump();
                true
            } else {
                false
            };
            let mut set = [false; 128];
            loop {
                match self.peek() {
                    None => return Err(Error("unterminated character class".into())),
                    Some(']') => break,
                    Some('&') if self.chars.get(self.pos + 1) == Some(&'&') => {
                        self.pos += 2;
                        let rhs = if self.peek() == Some('[') {
                            self.bump();
                            let s = self.parse_class_set()?;
                            self.eat(']')?;
                            s
                        } else {
                            // Bare items after `&&`: collect them as a union.
                            self.parse_class_set()?
                        };
                        for (slot, allowed) in set.iter_mut().zip(rhs.iter()) {
                            *slot &= *allowed;
                        }
                    }
                    Some('[') => {
                        self.bump();
                        let inner = self.parse_class_set()?;
                        self.eat(']')?;
                        for (slot, allowed) in set.iter_mut().zip(inner.iter()) {
                            *slot |= *allowed;
                        }
                    }
                    Some(_) => {
                        let lo = self.parse_class_char()?;
                        if self.peek() == Some('-')
                            && self.chars.get(self.pos + 1).is_some_and(|&c| c != ']')
                        {
                            self.bump();
                            let hi = self.parse_class_char()?;
                            if (hi as u32) < (lo as u32) {
                                return Err(Error(format!("inverted range {lo:?}-{hi:?}")));
                            }
                            for code in (lo as u32)..=(hi as u32) {
                                if code < 128 {
                                    set[code as usize] = true;
                                }
                            }
                        } else if (lo as u32) < 128 {
                            set[lo as usize] = true;
                        }
                    }
                }
            }
            if negated {
                // Negate over printable ASCII; generated text stays tame.
                let mut neg = [false; 128];
                for code in 0x20..=0x7E {
                    neg[code] = !set[code];
                }
                set = neg;
            }
            Ok(set)
        }

        fn parse_class_char(&mut self) -> Result<char, Error> {
            match self.bump() {
                Some('\\') => match self.bump() {
                    Some('n') => Ok('\n'),
                    Some('t') => Ok('\t'),
                    Some(c) => Ok(c),
                    None => Err(Error("dangling escape in class".into())),
                },
                Some(c) => Ok(c),
                None => Err(Error("unterminated character class".into())),
            }
        }
    }

    fn set_to_chars(set: &[bool; 128]) -> Vec<char> {
        set.iter()
            .enumerate()
            .filter(|(_, &allowed)| allowed)
            .map(|(code, _)| char::from(code as u8))
            .collect()
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declare property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config = $config;
            let mut runner_rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(20).max(1_000) {
                    panic!(
                        "proptest: too many rejected cases in {} ({} accepted of {} wanted)",
                        stringify!($name), accepted, config.cases
                    );
                }
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut runner_rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { { $body } ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest property {} failed at case {}: {}",
                            stringify!($name), accepted, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Assert a condition inside a property; failure reports the generated
/// inputs' offending expression instead of unwinding through the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Assert two expressions are equal (requires `Debug` on both sides).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left_val = &$left;
        let right_val = &$right;
        if !(*left_val == *right_val) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left_val,
                    right_val
                ),
            ));
        }
    }};
}

/// Assert two expressions differ (requires `Debug` on both sides).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left_val = &$left;
        let right_val = &$right;
        if *left_val == *right_val {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left_val
                ),
            ));
        }
    }};
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Choose uniformly among alternative strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..500 {
            let v = Strategy::generate(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::for_test("regex_subset");
        let label = crate::string::string_regex("[a-z0-9]([a-z0-9-]{0,13}[a-z0-9])?").unwrap();
        for _ in 0..300 {
            let s = Strategy::generate(&label, &mut rng);
            assert!(!s.is_empty() && s.len() <= 15, "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{s:?}"
            );
            assert!(!s.starts_with('-') && !s.ends_with('-'), "{s:?}");
        }
    }

    #[test]
    fn class_intersection_excludes_right_negation() {
        let mut rng = TestRng::for_test("intersection");
        let s = crate::string::string_regex("[!-~&&[^ ]]{0,40}").unwrap();
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v.len() <= 40);
            assert!(v.chars().all(|c| ('!'..='~').contains(&c)), "{v:?}");
        }
    }

    #[test]
    fn collection_vec_respects_size() {
        let mut rng = TestRng::for_test("vec_sizes");
        let strat = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = crate::collection::vec(any::<u8>(), 9);
        assert_eq!(Strategy::generate(&exact, &mut rng).len(), 9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro machinery itself: patterns, assume, assert.
        #[test]
        fn macro_roundtrip(a in 0u64..1_000, b in any::<u16>(), s in "[a-z]{1,4}") {
            prop_assume!(b != 0);
            prop_assert!(a < 1_000);
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert_ne!(s.len(), 0);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u32..10).prop_map(|x| x as u64),
            any::<u16>().prop_map(u64::from),
        ]) {
            prop_assert!(v <= u64::from(u16::MAX));
        }
    }
}
