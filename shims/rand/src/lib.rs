//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of the `rand` API that dohperf actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`]. The generator is xoshiro256++ seeded through
//! splitmix64 — statistically strong, fast, and fully deterministic,
//! which is all the simulation requires. The streams differ from the real
//! `StdRng` (ChaCha12), so datasets are not bit-compatible with builds
//! against crates.io rand; every consumer in this repo only relies on
//! *internal* reproducibility (same seed, same stream), which holds.

/// Types that can be sampled uniformly from raw generator output.
pub trait UniformSample: Sized {
    /// Draw one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl UniformSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl UniformSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl UniformSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `(x >> 11) * 2^-53` construction).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a generator can sample from (the `gen_range` argument).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Widening-multiply bounded draw; bias is < 2^-64 * span,
                // far below anything the statistical tests can resolve.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as u64;
                start + v as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// The raw-generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value of an inferred type uniformly.
    fn gen<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generators that can be constructed from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// splitmix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate case; splitmix64 cannot
            // produce four zeros from any input, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_f64_in_range_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.gen_range(0..7usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_range_floats() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }
}
