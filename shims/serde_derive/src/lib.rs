//! Derive macros for the offline `serde` shim.
//!
//! The shim's `Serialize`/`Deserialize` are marker traits (nothing in this
//! workspace performs generic serde serialisation — exports are
//! hand-rolled JSON/CSV), so the derives only need to emit empty trait
//! impls. Parsing is done by hand on the raw token stream: the offline
//! environment has no `syn`/`quote`.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name following the `struct`/`enum`/`union` keyword and
/// any generic parameter names declared right after it.
fn type_header(input: TokenStream) -> (String, Vec<String>) {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        let TokenTree::Ident(id) = &tt else { continue };
        let kw = id.to_string();
        if kw != "struct" && kw != "enum" && kw != "union" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = iter.next() else {
            panic!("derive shim: expected a type name after `{kw}`");
        };
        // Collect simple generic parameter names (`<A, B: Bound, 'a>`),
        // enough for the handful of generic containers a derive might hit.
        let mut params = Vec::new();
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '<' {
                iter.next();
                let mut depth = 1usize;
                let mut expecting_param = true;
                for tt in iter.by_ref() {
                    match &tt {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                            expecting_param = true;
                        }
                        TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                            expecting_param = false;
                        }
                        TokenTree::Ident(id) if expecting_param && depth == 1 => {
                            params.push(id.to_string());
                            expecting_param = false;
                        }
                        TokenTree::Punct(p) if p.as_char() == '\'' && expecting_param => {
                            // Lifetime marker; the following ident is the
                            // lifetime name.
                        }
                        _ => {}
                    }
                }
            }
        }
        return (name.to_string(), params);
    }
    panic!("derive shim: no struct/enum/union found in derive input");
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let (name, params) = type_header(input);
    let code = if params.is_empty() {
        format!("impl {trait_path} for {name} {{}}")
    } else {
        let list = params.join(", ");
        format!("impl<{list}> {trait_path} for {name}<{list}> {{}}")
    };
    code.parse().expect("derive shim: generated impl parses")
}

/// Emit an empty `impl serde::Serialize for T`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// Emit an empty `impl serde::Deserialize for T`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize")
}
