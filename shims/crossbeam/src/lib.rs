//! Offline stand-in for `crossbeam`: the scoped-thread API the campaign
//! worker pool uses, implemented over `std::thread::scope` (stable since
//! Rust 1.63). Panics in workers propagate when the scope joins, exactly
//! like crossbeam's behaviour of returning them through `scope()`.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    /// A handle for spawning scoped worker threads.
    ///
    /// Mirrors `crossbeam_utils::thread::Scope`: `spawn` hands the closure
    /// a `&Scope` so workers can themselves spawn siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker bound to this scope.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let reentrant = Scope { inner: self.inner };
            self.inner.spawn(move || f(&reentrant))
        }
    }

    /// Run `f` with a scope in which borrowed data may be shared with
    /// worker threads; all workers are joined before `scope` returns.
    ///
    /// Returns `Ok(result)` on success. A panicking worker propagates its
    /// panic out of `scope` (std semantics); the `Result` wrapper exists
    /// so call sites keep crossbeam's `scope(...).unwrap()` idiom.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Work-stealing deques, mirroring `crossbeam::deque`.
///
/// The real crate uses a lock-free Chase-Lev deque; this offline stand-in
/// uses a mutex-guarded `VecDeque`, which preserves the API and the
/// owner-takes-front / thief-takes-back discipline. Contention is cold in
/// this repo's usage (workers steal only when their own queue runs dry),
/// so the lock is not on any hot path.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A race was lost; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// The owner side of a FIFO work queue.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    /// A handle other threads use to steal from a [`Worker`].
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Worker<T> {
        /// Create a FIFO worker queue (owner pops the front, thieves steal
        /// the back — oldest-first for the owner keeps shard order cheap).
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// A stealer handle for this queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// Push a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("deque poisoned").push_back(task);
        }

        /// Pop the owner's next task.
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("deque poisoned").pop_front()
        }

        /// True when the queue holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque poisoned").is_empty()
        }
    }

    impl<T> Stealer<T> {
        /// Try to steal one task from the victim's end.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("deque poisoned").pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True when the victim's queue holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque poisoned").is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_workers() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn workers_can_spawn_siblings() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = super::thread::scope(|s| {
            let h = s.spawn(|_| 21);
            h.join().unwrap() * 2
        })
        .unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn deque_owner_is_fifo_and_thief_takes_back() {
        let w = super::deque::Worker::new_fifo();
        let s = w.stealer();
        for i in 0..4 {
            w.push(i);
        }
        assert_eq!(w.pop(), Some(0));
        assert_eq!(s.steal(), super::deque::Steal::Success(3));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), super::deque::Steal::<i32>::Empty);
        assert!(w.is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn deque_steals_across_threads() {
        let w = super::deque::Worker::new_fifo();
        for i in 0..1000 {
            w.push(i);
        }
        let taken = AtomicUsize::new(0);
        super::thread::scope(|sc| {
            for _ in 0..4 {
                let st = w.stealer();
                let taken = &taken;
                sc.spawn(move |_| {
                    while st.steal().success().is_some() {
                        taken.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(taken.load(Ordering::SeqCst), 1000);
        assert!(w.is_empty());
    }
}
