//! Offline stand-in for `crossbeam`: the scoped-thread API the campaign
//! worker pool uses, implemented over `std::thread::scope` (stable since
//! Rust 1.63). Panics in workers propagate when the scope joins, exactly
//! like crossbeam's behaviour of returning them through `scope()`.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    /// A handle for spawning scoped worker threads.
    ///
    /// Mirrors `crossbeam_utils::thread::Scope`: `spawn` hands the closure
    /// a `&Scope` so workers can themselves spawn siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker bound to this scope.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let reentrant = Scope { inner: self.inner };
            self.inner.spawn(move || f(&reentrant))
        }
    }

    /// Run `f` with a scope in which borrowed data may be shared with
    /// worker threads; all workers are joined before `scope` returns.
    ///
    /// Returns `Ok(result)` on success. A panicking worker propagates its
    /// panic out of `scope` (std semantics); the `Result` wrapper exists
    /// so call sites keep crossbeam's `scope(...).unwrap()` idiom.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_workers() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn workers_can_spawn_siblings() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = super::thread::scope(|s| {
            let h = s.spawn(|_| 21);
            h.join().unwrap() * 2
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
