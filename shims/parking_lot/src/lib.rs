//! Offline stand-in for `parking_lot`: `Mutex`/`RwLock` with the
//! poison-free API (`lock()`/`read()`/`write()` return guards directly),
//! implemented over `std::sync`. A poisoned std lock is treated the way
//! parking_lot treats it — the data stays accessible; the panic that
//! poisoned it has already propagated wherever it matters.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with a non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with a non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
